#include "topology/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "topology/generator.h"

namespace lg::topo {
namespace {

TEST(TopologyIoTest, ParseMinimalGraph) {
  const auto g = from_caida(
      "# a comment\n"
      "1|2|-1\n"
      "2|3|-1\n"
      "1|4|0\n");
  EXPECT_EQ(g.num_ases(), 4u);
  EXPECT_EQ(g.num_links(), 3u);
  EXPECT_EQ(g.relationship(2, 1), Rel::kProvider);  // 1 provides to 2
  EXPECT_EQ(g.relationship(1, 2), Rel::kCustomer);
  EXPECT_EQ(g.relationship(1, 4), Rel::kPeer);
  // Tiers reclassified from structure.
  EXPECT_EQ(g.tier(1), AsTier::kTier1);
  EXPECT_EQ(g.tier(2), AsTier::kTransit);
  EXPECT_EQ(g.tier(3), AsTier::kStub);
}

TEST(TopologyIoTest, AcceptsSerial2FourthField) {
  const auto g = from_caida("1|2|-1|bgp\n");
  EXPECT_EQ(g.num_links(), 1u);
}

TEST(TopologyIoTest, RoundTripPreservesGraph) {
  const auto topo = generate_topology({.num_tier1 = 4,
                                       .num_large_transit = 8,
                                       .num_small_transit = 20,
                                       .num_stubs = 50,
                                       .seed = 77});
  const auto text = to_caida(topo.graph);
  const auto loaded = from_caida(text);
  EXPECT_EQ(loaded.num_ases(), topo.graph.num_ases());
  EXPECT_EQ(loaded.links(), topo.graph.links());
  for (const auto& link : topo.graph.links()) {
    EXPECT_EQ(loaded.relationship(link.a, link.b),
              topo.graph.relationship(link.a, link.b));
  }
  // Reclassified tiers are structurally consistent (the generator labels by
  // construction level; a "transit" that attracted no customers is
  // structurally a stub, which is what reclassification reports).
  for (const AsId as : loaded.as_ids()) {
    const bool has_provider = !loaded.providers(as).empty();
    const bool has_customer = !loaded.customers(as).empty();
    switch (loaded.tier(as)) {
      case AsTier::kTier1:
        EXPECT_FALSE(has_provider) << "AS " << as;
        break;
      case AsTier::kTransit:
        EXPECT_TRUE(has_provider && has_customer) << "AS " << as;
        break;
      case AsTier::kStub:
        EXPECT_TRUE(has_provider && !has_customer) << "AS " << as;
        break;
    }
  }
  EXPECT_FALSE(loaded.validate().has_value());
}

TEST(TopologyIoTest, ToleratesCrlfAndFieldWhitespace) {
  // CAIDA dumps fetched on Windows arrive CRLF-terminated and some scripts
  // pad fields; both must parse to the same graph as the clean form.
  const auto g = from_caida(
      "# comment\r\n"
      "\r\n"
      "   # indented comment\n"
      " 1 | 2 |-1 \r\n"
      "2|3|-1\r\n"
      "1\t|\t4|0\n");
  EXPECT_EQ(g.num_ases(), 4u);
  EXPECT_EQ(g.num_links(), 3u);
  EXPECT_EQ(g.relationship(1, 2), Rel::kCustomer);
  EXPECT_EQ(g.relationship(1, 4), Rel::kPeer);
}

TEST(TopologyIoTest, GoldenFixtureParsesExactly) {
  // Golden mini-Internet: 3-AS tier-1 clique (1,2,3), transit 10 under 1
  // and 2, stubs 100 and 200. Every relationship is pinned.
  const char* fixture =
      "# serial-1 golden fixture\n"
      "1|2|0\n"
      "1|3|0\n"
      "2|3|0\n"
      "1|10|-1\n"
      "2|10|-1\n"
      "10|100|-1\n"
      "3|200|-1|mlp\n";  // serial-2 style source field
  const auto g = from_caida(fixture);
  EXPECT_EQ(g.num_ases(), 6u);
  EXPECT_EQ(g.num_links(), 7u);
  EXPECT_EQ(g.tier(1), AsTier::kTier1);
  EXPECT_EQ(g.tier(2), AsTier::kTier1);
  EXPECT_EQ(g.tier(3), AsTier::kTier1);
  EXPECT_EQ(g.tier(10), AsTier::kTransit);
  EXPECT_EQ(g.tier(100), AsTier::kStub);
  EXPECT_EQ(g.tier(200), AsTier::kStub);
  EXPECT_EQ(g.relationship(10, 1), Rel::kProvider);
  EXPECT_EQ(g.relationship(10, 100), Rel::kCustomer);
  EXPECT_EQ(g.relationship(200, 3), Rel::kProvider);
  EXPECT_FALSE(g.validate().has_value());
  // And the writer round-trips it (field order/format is canonical).
  EXPECT_EQ(from_caida(to_caida(g)).links(), g.links());
}

TEST(TopologyIoTest, RejectsMalformedLines) {
  EXPECT_THROW(from_caida("1|2\n"), std::invalid_argument);
  EXPECT_THROW(from_caida("1|2|7\n"), std::invalid_argument);
  EXPECT_THROW(from_caida("x|2|-1\n"), std::invalid_argument);
  EXPECT_THROW(from_caida("1|1|-1\n"), std::invalid_argument);
  EXPECT_THROW(from_caida("0|2|-1\n"), std::invalid_argument);
  EXPECT_THROW(from_caida("1|2|-1\n1|2|0\n"), std::invalid_argument);
  EXPECT_THROW(from_caida("99999999999|2|-1\n"), std::invalid_argument);
}

TEST(TopologyIoTest, ErrorsCarryLineNumbers) {
  try {
    from_caida("1|2|-1\nbroken\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

// Every rejection names the line and what is wrong with it — a 70k-AS dump
// with one bad row must be debuggable from the message alone.
TEST(TopologyIoTest, DiagnosticsNameTheProblem) {
  const auto message_of = [](const std::string& text) -> std::string {
    try {
      from_caida(text);
    } catch (const std::invalid_argument& e) {
      return e.what();
    }
    return "";
  };
  EXPECT_NE(message_of("|2|-1\n").find("line 1: empty AS field 1"),
            std::string::npos);
  EXPECT_NE(message_of("1||-1\n").find("line 1: empty AS field 2"),
            std::string::npos);
  EXPECT_NE(message_of("1|2|\n").find("line 1: empty relationship field"),
            std::string::npos);
  EXPECT_NE(message_of("1|2|-1\n1|2|0\n").find("line 2: duplicate link 1-2"),
            std::string::npos);
  EXPECT_NE(message_of("7|7|0\n").find("line 1: self link on AS 7"),
            std::string::npos);
  EXPECT_NE(message_of("1|2|2\n").find("line 1: unknown relationship '2'"),
            std::string::npos);
  EXPECT_NE(message_of("1|2|-1\n\n3|x|0\n").find("line 3: non-numeric AS 'x'"),
            std::string::npos);
}

TEST(TopologyIoTest, ConflictingDuplicateIsRejectedEitherOrder) {
  // Same pair re-listed with a different relationship is still line 2's
  // fault, whichever relationship came first.
  EXPECT_THROW(from_caida("1|2|0\n2|1|-1\n"), std::invalid_argument);
  EXPECT_THROW(from_caida("2|1|-1\n1|2|0\n"), std::invalid_argument);
}

TEST(TopologyIoTest, FileRoundTrip) {
  const auto topo = generate_topology({.num_tier1 = 3,
                                       .num_large_transit = 5,
                                       .num_small_transit = 10,
                                       .num_stubs = 20,
                                       .seed = 3});
  const std::string path = ::testing::TempDir() + "/lg_topo_io_test.txt";
  save_caida_file(topo.graph, path);
  const auto loaded = load_caida_file(path);
  EXPECT_EQ(loaded.links(), topo.graph.links());
  std::remove(path.c_str());
}

TEST(TopologyIoTest, MissingFileThrows) {
  EXPECT_THROW(load_caida_file("/nonexistent/nowhere.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace lg::topo
