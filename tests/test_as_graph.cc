#include "topology/as_graph.h"

#include <gtest/gtest.h>

namespace lg::topo {
namespace {

AsGraph triangle() {
  AsGraph g;
  g.add_as(1, AsTier::kTier1);
  g.add_as(2, AsTier::kTransit);
  g.add_as(3, AsTier::kStub);
  g.add_link(2, 1, Rel::kProvider);  // 1 provides to 2
  g.add_link(3, 2, Rel::kProvider);  // 2 provides to 3
  return g;
}

TEST(RelTest, ReverseIsInvolution) {
  EXPECT_EQ(reverse(Rel::kCustomer), Rel::kProvider);
  EXPECT_EQ(reverse(Rel::kProvider), Rel::kCustomer);
  EXPECT_EQ(reverse(Rel::kPeer), Rel::kPeer);
  for (const auto r : {Rel::kCustomer, Rel::kProvider, Rel::kPeer}) {
    EXPECT_EQ(reverse(reverse(r)), r);
  }
}

TEST(AsGraphTest, AddAsRejectsDuplicatesAndZero) {
  AsGraph g;
  g.add_as(1);
  EXPECT_THROW(g.add_as(1), std::invalid_argument);
  EXPECT_THROW(g.add_as(0), std::invalid_argument);
}

TEST(AsGraphTest, AddLinkValidation) {
  AsGraph g;
  g.add_as(1);
  g.add_as(2);
  EXPECT_THROW(g.add_link(1, 1, Rel::kPeer), std::invalid_argument);
  EXPECT_THROW(g.add_link(1, 9, Rel::kPeer), std::invalid_argument);
  g.add_link(1, 2, Rel::kPeer);
  EXPECT_THROW(g.add_link(2, 1, Rel::kPeer), std::invalid_argument);
}

TEST(AsGraphTest, RelationshipIsSymmetricallyReversed) {
  const auto g = triangle();
  EXPECT_EQ(g.relationship(2, 1), Rel::kProvider);  // 1 is 2's provider
  EXPECT_EQ(g.relationship(1, 2), Rel::kCustomer);  // 2 is 1's customer
  EXPECT_FALSE(g.relationship(1, 3).has_value());
}

TEST(AsGraphTest, NeighborQueries) {
  const auto g = triangle();
  EXPECT_EQ(g.providers(3), std::vector<AsId>{2});
  EXPECT_EQ(g.customers(1), std::vector<AsId>{2});
  EXPECT_TRUE(g.peers(1).empty());
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_TRUE(g.neighbors(99).empty());
}

TEST(AsGraphTest, IdsAndLinksAreSortedDeterministically) {
  const auto g = triangle();
  EXPECT_EQ(g.as_ids(), (std::vector<AsId>{1, 2, 3}));
  const auto links = g.links();
  ASSERT_EQ(links.size(), 2u);
  EXPECT_EQ(links[0].a, 1u);
  EXPECT_EQ(links[0].b, 2u);
}

TEST(AsGraphTest, ValidatePassesOnCleanHierarchy) {
  EXPECT_FALSE(triangle().validate().has_value());
}

TEST(AsGraphTest, ValidateCatchesTier1WithProvider) {
  AsGraph g;
  g.add_as(1, AsTier::kTier1);
  g.add_as(2, AsTier::kTier1);
  g.add_link(1, 2, Rel::kProvider);  // tier-1 with a provider: invalid
  const auto err = g.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("tier-1"), std::string::npos);
}

TEST(AsGraphTest, ValidateCatchesOrphanIsland) {
  AsGraph g;
  g.add_as(1, AsTier::kTier1);
  g.add_as(2, AsTier::kStub);
  g.add_as(3, AsTier::kStub);
  g.add_link(2, 1, Rel::kProvider);
  // AS 3 has no provider chain to a tier-1 (it is marked stub but has no
  // links at all): tiers say stub, but reclassify first marks it tier-1;
  // keep its declared tier and expect a violation.
  const auto err = g.validate();
  ASSERT_TRUE(err.has_value());
}

TEST(AsGraphTest, ReclassifyTiersFromStructure) {
  AsGraph g;
  g.add_as(1, AsTier::kStub);  // wrong on purpose
  g.add_as(2, AsTier::kStub);
  g.add_as(3, AsTier::kTier1);  // wrong on purpose
  g.add_link(2, 1, Rel::kProvider);
  g.add_link(3, 2, Rel::kProvider);
  g.reclassify_tiers();
  EXPECT_EQ(g.tier(1), AsTier::kTier1);
  EXPECT_EQ(g.tier(2), AsTier::kTransit);
  EXPECT_EQ(g.tier(3), AsTier::kStub);
}

TEST(AsGraphTest, TierThrowsOnUnknownAs) {
  const AsGraph g;
  EXPECT_THROW(g.tier(1), std::out_of_range);
}

TEST(AsLinkKeyTest, CanonicalOrdering) {
  const AsLinkKey k1(5, 3);
  const AsLinkKey k2(3, 5);
  EXPECT_EQ(k1, k2);
  EXPECT_EQ(k1.a, 3u);
  EXPECT_EQ(AsLinkKeyHash{}(k1), AsLinkKeyHash{}(k2));
}

}  // namespace
}  // namespace lg::topo
