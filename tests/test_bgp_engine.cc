// BGP engine mechanics: propagation, withdrawal, MRAI batching, split
// horizon, export policy, counters, and observer plumbing.
#include <gtest/gtest.h>

#include "bgp/collector.h"
#include "bgp/engine.h"
#include "topology/addressing.h"
#include "topology/generator.h"
#include "util/scheduler.h"

namespace lg {
namespace {

using bgp::AsPath;
using topo::AsId;

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : topo_(topo::make_fig2_topology()), engine_(topo_.graph, sched_) {}

  topo::Prefix originate_default(AsId as) {
    const auto prefix = topo::AddressPlan::production_prefix(as);
    bgp::OriginPolicy policy;
    policy.default_path = AsPath{as};
    engine_.originate(as, prefix, policy);
    return prefix;
  }

  topo::Fig2Topology topo_;
  util::Scheduler sched_;
  bgp::BgpEngine engine_;
};

TEST_F(EngineTest, AnnouncementReachesEveryAs) {
  const auto prefix = originate_default(topo_.o);
  sched_.run();
  for (const AsId as : topo_.graph.as_ids()) {
    if (as == topo_.o) continue;
    EXPECT_NE(engine_.best_route(as, prefix), nullptr) << "AS " << as;
  }
}

TEST_F(EngineTest, EveryPathIsLoopFree) {
  const auto prefix = originate_default(topo_.o);
  sched_.run();
  for (const AsId as : topo_.graph.as_ids()) {
    if (const auto* r = engine_.best_route(as, prefix)) {
      EXPECT_EQ(bgp::count_occurrences(r->path, as), 0u);
      // No duplicates at all in honest (non-crafted) paths.
      auto sorted = r->path;
      std::sort(sorted.begin(), sorted.end());
      EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
    }
  }
}

TEST_F(EngineTest, WithdrawRemovesAllRoutes) {
  const auto prefix = originate_default(topo_.o);
  sched_.run();
  engine_.withdraw(topo_.o, prefix);
  sched_.run();
  for (const AsId as : topo_.graph.as_ids()) {
    EXPECT_EQ(engine_.best_route(as, prefix), nullptr) << "AS " << as;
  }
}

TEST_F(EngineTest, ValleyFreeExportPolicyHolds) {
  // Peer/provider routes must never be exported to peers or providers:
  // check every selected path is valley-free against the relationship graph.
  const auto prefix = originate_default(topo_.o);
  sched_.run();
  for (const AsId as : topo_.graph.as_ids()) {
    const auto* r = engine_.best_route(as, prefix);
    if (r == nullptr) continue;
    // Walk the full path as->...->origin and check the valley-free shape:
    // once we traverse a peer or customer->provider... build the traversal
    // from the receiver's perspective: as -> path[0] -> path[1] -> ...
    std::vector<AsId> walk;
    walk.push_back(as);
    for (const AsId hop : r->path) {
      if (walk.back() != hop) walk.push_back(hop);
    }
    bool descending = false;
    for (std::size_t i = 0; i + 1 < walk.size(); ++i) {
      const auto rel = topo_.graph.relationship(walk[i], walk[i + 1]);
      ASSERT_TRUE(rel.has_value())
          << "non-adjacent hop " << walk[i] << "->" << walk[i + 1];
      if (descending) {
        EXPECT_EQ(*rel, topo::Rel::kCustomer)
            << "valley in path at " << walk[i] << "->" << walk[i + 1];
      } else if (*rel != topo::Rel::kProvider) {
        descending = true;  // peer or customer edge: must descend after
      }
    }
  }
}

TEST_F(EngineTest, MraiBatchesRapidChanges) {
  const auto prefix = originate_default(topo_.o);
  sched_.run();
  engine_.reset_counters();

  // Rapid-fire policy churn at the origin: three changes within one MRAI
  // window. Neighbors should see far fewer messages than naive flooding.
  for (int i = 0; i < 3; ++i) {
    bgp::OriginPolicy policy;
    policy.default_path = AsPath(static_cast<std::size_t>(1 + i), topo_.o);
    engine_.originate(topo_.o, prefix, policy);
    sched_.run(sched_.now() + 1.0);
  }
  sched_.run();
  // First change sends immediately; the second and third collapse into one
  // MRAI-deferred update per neighbor. O has one neighbor (B): <= 2 sends.
  EXPECT_LE(engine_.messages_sent_by(topo_.o), 2u);
}

TEST_F(EngineTest, ObserverSeesBestRouteChanges) {
  bgp::RouteCollector collector;
  collector.monitor_as(topo_.e);
  engine_.add_observer(&collector);
  const auto prefix = originate_default(topo_.o);
  sched_.run();
  ASSERT_FALSE(collector.events().empty());
  for (const auto& ev : collector.events()) {
    EXPECT_EQ(ev.as, topo_.e);
    EXPECT_EQ(ev.prefix, prefix);
  }
  const auto final_route = collector.final_route(topo_.e, prefix);
  ASSERT_TRUE(final_route.has_value());
  EXPECT_EQ(final_route->path, engine_.best_route(topo_.e, prefix)->path);
  engine_.remove_observer(&collector);
}

TEST_F(EngineTest, CollectorConvergenceAnalytics) {
  bgp::RouteCollector collector;
  engine_.add_observer(&collector);
  const auto prefix = originate_default(topo_.o);
  sched_.run();

  // Single announcement: every AS that got a route did so with >= 1 update.
  for (const AsId as : topo_.graph.as_ids()) {
    if (as == topo_.o) continue;
    EXPECT_GE(collector.update_count(as, prefix, 0.0), 1u);
    EXPECT_TRUE(collector.convergence_time(as, prefix, 0.0).has_value());
  }
  // Unknown AS has no convergence data.
  EXPECT_FALSE(collector.convergence_time(9999, prefix, 0.0).has_value());
  engine_.remove_observer(&collector);
}

TEST_F(EngineTest, SplitHorizonNoEchoToLearnedNeighbor) {
  const auto prefix = originate_default(topo_.o);
  sched_.run();
  // B learned the prefix from O; B's export back to O must be empty.
  EXPECT_FALSE(engine_.speaker(topo_.b).export_path(prefix, topo_.o));
}

TEST_F(EngineTest, PeerRouteNotExportedToProvider) {
  const auto prefix = originate_default(topo_.o);
  sched_.run();
  // C's best is via customer B, exportable everywhere. Force the check on
  // A: A's best is via customer B too. E is A's customer: exportable.
  EXPECT_TRUE(engine_.speaker(topo_.a).export_path(prefix, topo_.e));
  // Now consider E: its best is via provider A; E has no customers, and
  // must not export a provider route to provider D.
  EXPECT_FALSE(engine_.speaker(topo_.e).export_path(prefix, topo_.d));
}

TEST_F(EngineTest, FibPrefersMoreSpecificAcrossOrigins) {
  // O announces its production /24; a second origin announces a covering
  // /23 (hypothetical aggregation): more specific must win at every AS.
  const auto prod = originate_default(topo_.o);
  const auto sentinel = topo::AddressPlan::sentinel_prefix(topo_.o);
  bgp::OriginPolicy policy;
  policy.default_path = AsPath{topo_.o};
  engine_.originate(topo_.o, sentinel, policy);
  sched_.run();
  const auto host = topo::AddressPlan::production_host(topo_.o);
  for (const AsId as : topo_.graph.as_ids()) {
    if (as == topo_.o) continue;
    const auto fib = engine_.speaker(as).fib_lookup(host);
    ASSERT_TRUE(fib.has_route) << "AS " << as;
    EXPECT_EQ(fib.matched, prod) << "AS " << as;
  }
}

TEST_F(EngineTest, DefaultRouteFallback) {
  auto& f = engine_.speaker(topo_.f);
  f.mutable_config().has_default_route = true;
  // No announcements at all: F still forwards via its provider A.
  const auto fib = f.fib_lookup(topo::AddressPlan::production_host(topo_.o));
  ASSERT_TRUE(fib.has_route);
  EXPECT_TRUE(fib.via_default);
  EXPECT_EQ(fib.next_hop, topo_.a);
}

TEST_F(EngineTest, SelectiveAnnouncementWithholdsPerNeighbor) {
  // E multihomed to A and D: withhold from A, so E's inbound routes all
  // come via D (classic selective advertising, §2.3).
  const auto prefix = topo::AddressPlan::production_prefix(topo_.e);
  bgp::OriginPolicy policy;
  policy.default_path = AsPath{topo_.e};
  policy.per_neighbor[topo_.a] = std::nullopt;
  engine_.originate(topo_.e, prefix, policy);
  sched_.run();
  const auto* route_at_a = engine_.best_route(topo_.a, prefix);
  ASSERT_NE(route_at_a, nullptr);  // A still learns it transitively
  EXPECT_NE(route_at_a->neighbor, topo_.e);
}

TEST_F(EngineTest, CountersResetCleanly) {
  originate_default(topo_.o);
  sched_.run();
  EXPECT_GT(engine_.total_messages(), 0u);
  engine_.reset_counters();
  EXPECT_EQ(engine_.total_messages(), 0u);
  EXPECT_EQ(engine_.messages_sent_by(topo_.b), 0u);
  EXPECT_EQ(engine_.best_changes_of(topo_.b), 0u);
}

TEST_F(EngineTest, UnknownSpeakerThrows) {
  EXPECT_THROW(engine_.speaker(4242), std::out_of_range);
}

}  // namespace
}  // namespace lg
