// BGP engine mechanics: propagation, withdrawal, MRAI batching, split
// horizon, export policy, counters, and observer plumbing.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>

#include "bgp/collector.h"
#include "bgp/engine.h"
#include "check/audit.h"
#include "obs/metrics.h"
#include "topology/addressing.h"
#include "topology/generator.h"
#include "util/scheduler.h"

namespace lg {
namespace {

using bgp::AsPath;
using topo::AsId;

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : topo_(topo::make_fig2_topology()), engine_(topo_.graph, sched_) {}

  topo::Prefix originate_default(AsId as) {
    const auto prefix = topo::AddressPlan::production_prefix(as);
    bgp::OriginPolicy policy;
    policy.default_path = AsPath{as};
    engine_.originate(as, prefix, policy);
    return prefix;
  }

  ~EngineTest() override {
    // Opt-in audit of whatever state the test ended in, when quiesced.
    if (sched_.empty()) check::maybe_audit(engine_, "EngineTest teardown");
  }

  topo::Fig2Topology topo_;
  util::Scheduler sched_;
  bgp::BgpEngine engine_;
};

TEST_F(EngineTest, AnnouncementReachesEveryAs) {
  const auto prefix = originate_default(topo_.o);
  sched_.run();
  for (const AsId as : topo_.graph.as_ids()) {
    if (as == topo_.o) continue;
    EXPECT_NE(engine_.best_route(as, prefix), nullptr) << "AS " << as;
  }
}

TEST_F(EngineTest, EveryPathIsLoopFree) {
  const auto prefix = originate_default(topo_.o);
  sched_.run();
  for (const AsId as : topo_.graph.as_ids()) {
    if (const auto* r = engine_.best_route(as, prefix)) {
      EXPECT_EQ(bgp::count_occurrences(r->path, as), 0u);
      // No duplicates at all in honest (non-crafted) paths.
      bgp::AsPath sorted = r->path;  // explicit copy: paths are shared/immutable
      std::sort(sorted.begin(), sorted.end());
      EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
    }
  }
}

TEST_F(EngineTest, WithdrawRemovesAllRoutes) {
  const auto prefix = originate_default(topo_.o);
  sched_.run();
  engine_.withdraw(topo_.o, prefix);
  sched_.run();
  for (const AsId as : topo_.graph.as_ids()) {
    EXPECT_EQ(engine_.best_route(as, prefix), nullptr) << "AS " << as;
  }
}

TEST_F(EngineTest, ValleyFreeExportPolicyHolds) {
  // Peer/provider routes must never be exported to peers or providers:
  // check every selected path is valley-free against the relationship graph.
  const auto prefix = originate_default(topo_.o);
  sched_.run();
  for (const AsId as : topo_.graph.as_ids()) {
    const auto* r = engine_.best_route(as, prefix);
    if (r == nullptr) continue;
    // Walk the full path as->...->origin and check the valley-free shape:
    // once we traverse a peer or customer->provider... build the traversal
    // from the receiver's perspective: as -> path[0] -> path[1] -> ...
    std::vector<AsId> walk;
    walk.push_back(as);
    for (const AsId hop : r->path) {
      if (walk.back() != hop) walk.push_back(hop);
    }
    bool descending = false;
    for (std::size_t i = 0; i + 1 < walk.size(); ++i) {
      const auto rel = topo_.graph.relationship(walk[i], walk[i + 1]);
      ASSERT_TRUE(rel.has_value())
          << "non-adjacent hop " << walk[i] << "->" << walk[i + 1];
      if (descending) {
        EXPECT_EQ(*rel, topo::Rel::kCustomer)
            << "valley in path at " << walk[i] << "->" << walk[i + 1];
      } else if (*rel != topo::Rel::kProvider) {
        descending = true;  // peer or customer edge: must descend after
      }
    }
  }
}

TEST_F(EngineTest, MraiBatchesRapidChanges) {
  const auto prefix = originate_default(topo_.o);
  sched_.run();
  engine_.reset_counters();

  // Rapid-fire policy churn at the origin: three changes within one MRAI
  // window. Neighbors should see far fewer messages than naive flooding.
  for (int i = 0; i < 3; ++i) {
    bgp::OriginPolicy policy;
    policy.default_path = AsPath(static_cast<std::size_t>(1 + i), topo_.o);
    engine_.originate(topo_.o, prefix, policy);
    sched_.run(sched_.now() + 1.0);
  }
  sched_.run();
  // First change sends immediately; the second and third collapse into one
  // MRAI-deferred update per neighbor. O has one neighbor (B): <= 2 sends.
  EXPECT_LE(engine_.messages_sent_by(topo_.o), 2u);
}

TEST_F(EngineTest, ObserverSeesBestRouteChanges) {
  bgp::RouteCollector collector;
  collector.monitor_as(topo_.e);
  engine_.add_observer(&collector);
  const auto prefix = originate_default(topo_.o);
  sched_.run();
  ASSERT_FALSE(collector.events().empty());
  for (const auto& ev : collector.events()) {
    EXPECT_EQ(ev.as, topo_.e);
    EXPECT_EQ(ev.prefix, prefix);
  }
  const auto final_route = collector.final_route(topo_.e, prefix);
  ASSERT_TRUE(final_route.has_value());
  EXPECT_EQ(final_route->path, engine_.best_route(topo_.e, prefix)->path);
  engine_.remove_observer(&collector);
}

TEST_F(EngineTest, CollectorConvergenceAnalytics) {
  bgp::RouteCollector collector;
  engine_.add_observer(&collector);
  const auto prefix = originate_default(topo_.o);
  sched_.run();

  // Single announcement: every AS that got a route did so with >= 1 update.
  for (const AsId as : topo_.graph.as_ids()) {
    if (as == topo_.o) continue;
    EXPECT_GE(collector.update_count(as, prefix, 0.0), 1u);
    EXPECT_TRUE(collector.convergence_time(as, prefix, 0.0).has_value());
  }
  // Unknown AS has no convergence data.
  EXPECT_FALSE(collector.convergence_time(9999, prefix, 0.0).has_value());
  engine_.remove_observer(&collector);
}

TEST_F(EngineTest, SplitHorizonNoEchoToLearnedNeighbor) {
  const auto prefix = originate_default(topo_.o);
  sched_.run();
  // B learned the prefix from O; B's export back to O must be empty.
  EXPECT_FALSE(engine_.speaker(topo_.b).export_path(prefix, topo_.o));
}

TEST_F(EngineTest, PeerRouteNotExportedToProvider) {
  const auto prefix = originate_default(topo_.o);
  sched_.run();
  // C's best is via customer B, exportable everywhere. Force the check on
  // A: A's best is via customer B too. E is A's customer: exportable.
  EXPECT_TRUE(engine_.speaker(topo_.a).export_path(prefix, topo_.e));
  // Now consider E: its best is via provider A; E has no customers, and
  // must not export a provider route to provider D.
  EXPECT_FALSE(engine_.speaker(topo_.e).export_path(prefix, topo_.d));
}

TEST_F(EngineTest, FibPrefersMoreSpecificAcrossOrigins) {
  // O announces its production /24; a second origin announces a covering
  // /23 (hypothetical aggregation): more specific must win at every AS.
  const auto prod = originate_default(topo_.o);
  const auto sentinel = topo::AddressPlan::sentinel_prefix(topo_.o);
  bgp::OriginPolicy policy;
  policy.default_path = AsPath{topo_.o};
  engine_.originate(topo_.o, sentinel, policy);
  sched_.run();
  const auto host = topo::AddressPlan::production_host(topo_.o);
  for (const AsId as : topo_.graph.as_ids()) {
    if (as == topo_.o) continue;
    const auto fib = engine_.speaker(as).fib_lookup(host);
    ASSERT_TRUE(fib.has_route) << "AS " << as;
    EXPECT_EQ(fib.matched, prod) << "AS " << as;
  }
}

TEST_F(EngineTest, DefaultRouteFallback) {
  auto& f = engine_.speaker(topo_.f);
  f.mutable_config().has_default_route = true;
  // No announcements at all: F still forwards via its provider A.
  const auto fib = f.fib_lookup(topo::AddressPlan::production_host(topo_.o));
  ASSERT_TRUE(fib.has_route);
  EXPECT_TRUE(fib.via_default);
  EXPECT_EQ(fib.next_hop, topo_.a);
}

TEST_F(EngineTest, SelectiveAnnouncementWithholdsPerNeighbor) {
  // E multihomed to A and D: withhold from A, so E's inbound routes all
  // come via D (classic selective advertising, §2.3).
  const auto prefix = topo::AddressPlan::production_prefix(topo_.e);
  bgp::OriginPolicy policy;
  policy.default_path = AsPath{topo_.e};
  policy.per_neighbor[topo_.a] = std::nullopt;
  engine_.originate(topo_.e, prefix, policy);
  sched_.run();
  const auto* route_at_a = engine_.best_route(topo_.a, prefix);
  ASSERT_NE(route_at_a, nullptr);  // A still learns it transitively
  EXPECT_NE(route_at_a->neighbor, topo_.e);
}

TEST_F(EngineTest, CountersResetCleanly) {
  originate_default(topo_.o);
  sched_.run();
  EXPECT_GT(engine_.total_messages(), 0u);
  engine_.reset_counters();
  EXPECT_EQ(engine_.total_messages(), 0u);
  EXPECT_EQ(engine_.messages_sent_by(topo_.b), 0u);
  EXPECT_EQ(engine_.best_changes_of(topo_.b), 0u);
}

TEST_F(EngineTest, UnknownSpeakerThrows) {
  EXPECT_THROW(engine_.speaker(4242), std::out_of_range);
}

TEST_F(EngineTest, ResetCountersZeroesObsCounters) {
  // The engine in this fixture resolved its lg.bgp.* handles against the
  // registry current at construction (the global one here). reset_counters()
  // must zero those alongside the engine-local tallies, so a post-reset run
  // report covers only the post-reset phase.
  auto& reg = obs::MetricsRegistry::current();
  const auto prefix = originate_default(topo_.o);
  sched_.run();
  ASSERT_GT(engine_.total_messages(), 0u);
  ASSERT_GT(reg.counter("lg.bgp.updates_sent").value(), 0u);
  ASSERT_GT(reg.counter("lg.bgp.updates_delivered").value(), 0u);

  engine_.reset_counters();
  EXPECT_EQ(engine_.total_messages(), 0u);
  EXPECT_EQ(reg.counter("lg.bgp.updates_sent").value(), 0u);
  EXPECT_EQ(reg.counter("lg.bgp.announces_sent").value(), 0u);
  EXPECT_EQ(reg.counter("lg.bgp.withdrawals_sent").value(), 0u);
  EXPECT_EQ(reg.counter("lg.bgp.updates_delivered").value(), 0u);
  EXPECT_EQ(reg.counter("lg.bgp.mrai_deferrals").value(), 0u);
  EXPECT_EQ(reg.counter("lg.bgp.best_path_changes").value(), 0u);

  // Counters keep counting after the reset (handles stayed valid).
  engine_.withdraw(topo_.o, prefix);
  sched_.run();
  EXPECT_GT(reg.counter("lg.bgp.updates_sent").value(), 0u);
  EXPECT_EQ(reg.counter("lg.bgp.updates_sent").value(),
            engine_.total_messages());
}

TEST(SessionPrefixKeyHashTest, HashCombineBreaksXorCollisionFamily) {
  // The pre-hash_combine implementation was
  //   H(session) ^ (PrefixHash(prefix) * 0x9e3779b97f4a7c15)
  // which collides deterministically for any pair of keys whose session
  // hashes differ by exactly the XOR of the two prefix terms. Build such a
  // pair and check the shipped hash separates it.
  using Key = bgp::BgpEngine::SessionPrefixKey;
  constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
  const auto old_hash = [&](const Key& k) {
    return std::hash<std::uint64_t>{}(k.session) ^
           (topo::PrefixHash{}(k.prefix) * kGolden);
  };

  const topo::Prefix p1(0x0a000000u, 24);
  const topo::Prefix p2(0x0a000100u, 24);
  const std::uint64_t m1 = topo::PrefixHash{}(p1) * kGolden;
  const std::uint64_t m2 = topo::PrefixHash{}(p2) * kGolden;

  const std::uint64_t s1 = (77ull << 32) | 42ull;
  const Key k1{s1, p1};
  // libstdc++'s std::hash<uint64_t> is the identity, so this session value
  // makes the old hash collide with k1 by construction.
  const Key k2{s1 ^ m1 ^ m2, p2};
  ASSERT_NE(k1, k2);
  ASSERT_EQ(old_hash(k1), old_hash(k2)) << "collision premise broken";

  const bgp::BgpEngine::SessionPrefixKeyHash h;
  EXPECT_NE(h(k1), h(k2));

  // And distinct sane keys (same session, different prefixes — the MRAI
  // map's common case) keep distinct hashes too.
  const Key a{s1, p1};
  const Key b{s1, p2};
  EXPECT_NE(h(a), h(b));
}

}  // namespace
}  // namespace lg
