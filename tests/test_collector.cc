// Route collector analytics: monitored-set filtering, windowed event
// queries, convergence arithmetic, and final-route snapshots.
#include <gtest/gtest.h>

#include "bgp/collector.h"
#include "topology/addressing.h"
#include "topology/generator.h"
#include "util/scheduler.h"

namespace lg {
namespace {

using topo::AsId;

class CollectorTest : public ::testing::Test {
 protected:
  CollectorTest()
      : topo_(topo::make_fig2_topology()), engine_(topo_.graph, sched_) {
    prefix_ = topo::AddressPlan::production_prefix(topo_.o);
    other_prefix_ = topo::AddressPlan::production_prefix(topo_.e);
  }

  void announce(AsId origin, const topo::Prefix& prefix) {
    bgp::OriginPolicy policy;
    policy.default_path = bgp::AsPath{origin};
    engine_.originate(origin, prefix, policy);
  }

  topo::Fig2Topology topo_;
  util::Scheduler sched_;
  bgp::BgpEngine engine_;
  topo::Prefix prefix_;
  topo::Prefix other_prefix_;
};

TEST_F(CollectorTest, MonitorFiltersByAsAndPrefix) {
  bgp::RouteCollector collector;
  collector.monitor_as(topo_.e);
  collector.monitor_prefix(prefix_);
  engine_.add_observer(&collector);
  announce(topo_.o, prefix_);
  announce(topo_.e, other_prefix_);
  sched_.run();
  ASSERT_FALSE(collector.events().empty());
  for (const auto& ev : collector.events()) {
    EXPECT_EQ(ev.as, topo_.e);
    EXPECT_EQ(ev.prefix, prefix_);
  }
  engine_.remove_observer(&collector);
}

TEST_F(CollectorTest, EmptyMonitorRecordsEverything) {
  bgp::RouteCollector collector;
  engine_.add_observer(&collector);
  announce(topo_.o, prefix_);
  sched_.run();
  // Six ASes besides the origin converge; each produces >= 1 event.
  std::set<AsId> seen;
  for (const auto& ev : collector.events()) seen.insert(ev.as);
  EXPECT_EQ(seen.size(), 6u);
  engine_.remove_observer(&collector);
}

TEST_F(CollectorTest, WindowedQueriesRespectBounds) {
  bgp::RouteCollector collector;
  engine_.add_observer(&collector);
  announce(topo_.o, prefix_);
  sched_.run();
  const double t_mid = sched_.now() + 100.0;
  sched_.run(t_mid);
  engine_.withdraw(topo_.o, prefix_);
  sched_.run();

  // Events strictly before t_mid: announcement phase only.
  const auto early = collector.events_for(topo_.e, prefix_, 0.0, t_mid);
  ASSERT_FALSE(early.empty());
  for (const auto& ev : early) EXPECT_TRUE(ev.best.has_value());
  // Events after t_mid: the withdrawal (route lost).
  const auto late = collector.events_for(topo_.e, prefix_, t_mid);
  ASSERT_FALSE(late.empty());
  EXPECT_FALSE(late.back().best.has_value());
  engine_.remove_observer(&collector);
}

TEST_F(CollectorTest, ConvergenceTimeZeroForSingleUpdate) {
  bgp::RouteCollector collector;
  engine_.add_observer(&collector);
  announce(topo_.o, prefix_);
  sched_.run();
  // B hears exactly one update for a fresh announcement.
  EXPECT_EQ(collector.update_count(topo_.b, prefix_, 0.0), 1u);
  EXPECT_EQ(collector.convergence_time(topo_.b, prefix_, 0.0), 0.0);
  engine_.remove_observer(&collector);
}

TEST_F(CollectorTest, FinalRouteTracksLatestState) {
  bgp::RouteCollector collector;
  engine_.add_observer(&collector);
  announce(topo_.o, prefix_);
  sched_.run();
  const auto mid = collector.final_route(topo_.e, prefix_);
  ASSERT_TRUE(mid.has_value());
  EXPECT_EQ(mid->neighbor, topo_.a);

  engine_.withdraw(topo_.o, prefix_);
  sched_.run();
  EXPECT_FALSE(collector.final_route(topo_.e, prefix_).has_value());
  EXPECT_FALSE(collector.final_route(9999, prefix_).has_value());
  engine_.remove_observer(&collector);
}

TEST_F(CollectorTest, ClearResetsHistory) {
  bgp::RouteCollector collector;
  engine_.add_observer(&collector);
  announce(topo_.o, prefix_);
  sched_.run();
  EXPECT_FALSE(collector.events().empty());
  collector.clear();
  EXPECT_TRUE(collector.events().empty());
  EXPECT_EQ(collector.update_count(topo_.b, prefix_, 0.0), 0u);
  engine_.remove_observer(&collector);
}

}  // namespace
}  // namespace lg
