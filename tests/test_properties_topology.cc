// Property suite: topology, prefix, and oracle invariants over parameter
// sweeps.
#include <gtest/gtest.h>

#include <algorithm>

#include "topology/addressing.h"
#include "topology/generator.h"
#include "topology/valley_free.h"
#include "util/rng.h"

namespace lg {
namespace {

using topo::AsId;

// ---- Generator invariants over seeds and sizes ----

struct GenParams {
  std::uint64_t seed;
  std::uint32_t tier1;
  std::uint32_t large;
  std::uint32_t small;
  std::uint32_t stubs;
};

class GeneratorPropertyTest : public ::testing::TestWithParam<GenParams> {};

TEST_P(GeneratorPropertyTest, StructuralInvariants) {
  const auto& p = GetParam();
  const auto topo = topo::generate_topology({.num_tier1 = p.tier1,
                                             .num_large_transit = p.large,
                                             .num_small_transit = p.small,
                                             .num_stubs = p.stubs,
                                             .seed = p.seed});
  // Validation is the aggregate invariant (tiers coherent, provider paths
  // to tier-1, acyclic customer-provider hierarchy).
  EXPECT_FALSE(topo.graph.validate().has_value());
  // Tier lists partition the AS set.
  EXPECT_EQ(topo.tier1.size() + topo.large_transit.size() +
                topo.small_transit.size() + topo.stubs.size(),
            topo.graph.num_ases());
  // Relationship symmetry on every link.
  for (const auto& link : topo.graph.links()) {
    const auto ab = topo.graph.relationship(link.a, link.b);
    const auto ba = topo.graph.relationship(link.b, link.a);
    ASSERT_TRUE(ab.has_value());
    ASSERT_TRUE(ba.has_value());
    EXPECT_EQ(topo::reverse(*ab), *ba);
  }
}

TEST_P(GeneratorPropertyTest, FullPolicyReachability) {
  const auto& p = GetParam();
  const auto topo = topo::generate_topology({.num_tier1 = p.tier1,
                                             .num_large_transit = p.large,
                                             .num_small_transit = p.small,
                                             .num_stubs = p.stubs,
                                             .seed = p.seed});
  const topo::ValleyFreeOracle oracle(topo.graph);
  util::Rng rng(p.seed, 0xabcdULL);
  const auto ids = topo.graph.as_ids();
  for (int i = 0; i < 30; ++i) {
    const AsId a = rng.pick(ids);
    const AsId b = rng.pick(ids);
    EXPECT_TRUE(oracle.reachable(a, b)) << a << " -> " << b;
  }
}

TEST_P(GeneratorPropertyTest, OraclePathsAreRealPaths) {
  const auto& p = GetParam();
  const auto topo = topo::generate_topology({.num_tier1 = p.tier1,
                                             .num_large_transit = p.large,
                                             .num_small_transit = p.small,
                                             .num_stubs = p.stubs,
                                             .seed = p.seed});
  const topo::ValleyFreeOracle oracle(topo.graph);
  util::Rng rng(p.seed, 0xef01ULL);
  const auto ids = topo.graph.as_ids();
  for (int i = 0; i < 20; ++i) {
    const AsId a = rng.pick(ids);
    const AsId b = rng.pick(ids);
    const auto path = oracle.shortest_path(a, b);
    if (path.empty()) continue;
    EXPECT_EQ(path.front(), a);
    EXPECT_EQ(path.back(), b);
    for (std::size_t h = 0; h + 1 < path.size(); ++h) {
      EXPECT_TRUE(topo.graph.has_link(path[h], path[h + 1]))
          << path[h] << "-" << path[h + 1];
    }
    // No repeated AS on a shortest path.
    auto sorted = path;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
  }
}

TEST_P(GeneratorPropertyTest, AvoidanceIsSound) {
  // Any path returned under an avoidance constraint truly avoids it.
  const auto& p = GetParam();
  const auto topo = topo::generate_topology({.num_tier1 = p.tier1,
                                             .num_large_transit = p.large,
                                             .num_small_transit = p.small,
                                             .num_stubs = p.stubs,
                                             .seed = p.seed});
  const topo::ValleyFreeOracle oracle(topo.graph);
  util::Rng rng(p.seed, 0x1357ULL);
  const auto transits = topo.transit();
  for (int i = 0; i < 20; ++i) {
    const AsId a = rng.pick(topo.stubs);
    const AsId b = rng.pick(topo.stubs);
    const AsId avoid = rng.pick(transits);
    const auto path =
        oracle.shortest_path(a, b, topo::Avoidance::of_as(avoid));
    for (const AsId hop : path) EXPECT_NE(hop, avoid);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeneratorPropertyTest,
    ::testing::Values(GenParams{1, 3, 6, 15, 40}, GenParams{2, 4, 10, 30, 80},
                      GenParams{3, 8, 20, 60, 200},
                      GenParams{4, 2, 4, 10, 25},
                      GenParams{5, 12, 30, 80, 300}));

// ---- Prefix/addressing properties over random addresses ----

class PrefixPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrefixPropertyTest, CoversIsPartialOrderAndContainsAgrees) {
  util::Rng rng(GetParam(), 0x9999ULL);
  for (int i = 0; i < 2000; ++i) {
    const auto addr = rng.next_u32();
    const auto len1 = static_cast<std::uint8_t>(rng.uniform_u32(33));
    const auto len2 = static_cast<std::uint8_t>(rng.uniform_u32(33));
    const topo::Prefix p1(addr, len1);
    const topo::Prefix p2(addr, len2);
    // Same base address: the shorter prefix covers the longer.
    if (len1 <= len2) {
      EXPECT_TRUE(p1.covers(p2));
    } else {
      EXPECT_TRUE(p2.covers(p1));
    }
    // covers => contains for every member address we can sample.
    const auto member = p1.addr() | (rng.next_u32() & ~topo::Prefix::mask(len1));
    EXPECT_TRUE(p1.contains(member));
    // parent always covers.
    EXPECT_TRUE(p1.parent().covers(p1));
  }
}

TEST_P(PrefixPropertyTest, LpmAlwaysReturnsMostSpecificMatch) {
  util::Rng rng(GetParam(), 0x7777ULL);
  topo::PrefixTable<int> table;
  std::vector<topo::Prefix> inserted;
  for (int i = 0; i < 200; ++i) {
    const topo::Prefix p(rng.next_u32(),
                         static_cast<std::uint8_t>(8 + rng.uniform_u32(25)));
    table.insert(p, static_cast<int>(i));
    inserted.push_back(p);
  }
  for (int i = 0; i < 500; ++i) {
    const auto addr = rng.next_u32();
    const auto hit = table.lookup(addr);
    // Reference: brute force.
    const topo::Prefix* best = nullptr;
    for (const auto& p : inserted) {
      if (!p.contains(addr)) continue;
      if (best == nullptr || p.length() > best->length()) best = &p;
    }
    ASSERT_EQ(hit.has_value(), best != nullptr);
    if (best != nullptr) {
      EXPECT_EQ(hit->first.length(), best->length());
    }
  }
}

TEST_P(PrefixPropertyTest, AddressPlanIsInjective) {
  util::Rng rng(GetParam(), 0x4242ULL);
  for (int i = 0; i < 500; ++i) {
    const auto as1 = static_cast<AsId>(1 + rng.uniform_u32(32000));
    const auto as2 = static_cast<AsId>(1 + rng.uniform_u32(32000));
    if (as1 == as2) continue;
    EXPECT_FALSE(topo::AddressPlan::sentinel_prefix(as1).covers(
        topo::AddressPlan::production_prefix(as2)));
    EXPECT_NE(topo::AddressPlan::production_host(as1),
              topo::AddressPlan::production_host(as2));
    EXPECT_EQ(topo::AddressPlan::owner_of(
                  topo::AddressPlan::production_host(as1)),
              as1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefixPropertyTest,
                         ::testing::Values(10, 20, 30));

}  // namespace
}  // namespace lg
