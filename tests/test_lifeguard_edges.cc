// Orchestrator state-machine edge cases: declined verdicts, concurrent
// outages with one remediation slot, and re-detection after standing down.
#include <gtest/gtest.h>

#include "core/lifeguard.h"
#include "workload/scenarios.h"
#include "workload/sim_world.h"

namespace lg {
namespace {

using topo::AsId;

class LifeguardEdgeTest : public ::testing::Test {
 protected:
  LifeguardEdgeTest() : world_(workload::SimWorld::small_config(91)) {
    for (const AsId as : world_.topology().stubs) {
      if (world_.graph().providers(as).size() >= 2) {
        origin_ = as;
        break;
      }
    }
  }

  std::vector<measure::VantagePoint> make_helpers() {
    std::vector<measure::VantagePoint> helpers;
    for (const AsId as : world_.stub_vantage_ases(6)) {
      if (as == origin_) continue;
      world_.announce_production(as);
      helpers.push_back(measure::VantagePoint::in_as(as));
      helper_ases_.push_back(as);
    }
    return helpers;
  }

  workload::SimWorld world_;
  AsId origin_ = topo::kInvalidAs;
  std::vector<AsId> helper_ases_;
};

TEST_F(LifeguardEdgeTest, DeclinesWhenNoAlternateExists) {
  core::LifeguardConfig cfg;
  cfg.decision.min_elapsed_seconds = 300.0;
  core::Lifeguard guard(world_.scheduler(), world_.engine(), world_.prober(),
                        origin_, cfg);
  guard.set_helpers(make_helpers());
  guard.start();
  world_.advance(700.0);

  // Find a scenario whose culprit the decider must refuse (no alternate
  // from the target's side).
  workload::ScenarioGenerator gen(world_, 93);
  core::PoisonDecider decider(world_.graph());
  std::optional<workload::FailureScenario> scenario;
  for (const AsId target_as : world_.topology().stubs) {
    if (target_as == origin_) continue;
    auto s = gen.make(origin_, target_as, core::FailureDirection::kReverse,
                      false, helper_ases_);
    if (!s) continue;
    const AsId sources[] = {target_as};
    // The orchestrator may act at link granularity when isolation pins a
    // link, so the scenario must be undecidable at *both* granularities:
    // no alternate around the culprit AS, and none around any of its links.
    bool any_granularity_poisonable =
        decider.decide(origin_, s->culprit_as, 1000.0, sources).poison;
    for (const auto& n : world_.graph().neighbors(s->culprit_as)) {
      if (any_granularity_poisonable) break;
      any_granularity_poisonable =
          decider
              .decide(origin_, s->culprit_as, 1000.0, sources,
                      topo::AsLinkKey(s->culprit_as, n.id))
              .poison;
    }
    if (any_granularity_poisonable) {
      gen.repair(*s);
      continue;
    }
    scenario = std::move(s);
    break;
  }
  if (!scenario) GTEST_SKIP() << "every scenario was poisonable";
  gen.repair(*scenario);
  guard.add_target(scenario->target);
  world_.advance(1300.0);
  scenario->failure_ids.push_back(world_.failures().inject(dp::Failure{
      .at_as = scenario->culprit_as, .toward_as = origin_}));
  world_.advance(1500.0);

  ASSERT_FALSE(guard.outages().empty());
  const auto& record = guard.outages().front();
  // Isolation ran, but no remediation was applied.
  EXPECT_EQ(record.action, core::RepairAction::kNone);
  EXPECT_FALSE(guard.remediator().is_poisoned());
  EXPECT_FALSE(record.note.empty());
  gen.repair(*scenario);
}

TEST_F(LifeguardEdgeTest, SecondOutageStandsDownWhileRemediating) {
  core::LifeguardConfig cfg;
  cfg.decision.min_elapsed_seconds = 300.0;
  core::Lifeguard guard(world_.scheduler(), world_.engine(), world_.prober(),
                        origin_, cfg);
  guard.set_helpers(make_helpers());
  guard.start();
  world_.advance(700.0);

  // Two poisonable scenarios against different targets.
  workload::ScenarioGenerator gen(world_, 95);
  core::PoisonDecider decider(world_.graph());
  std::vector<workload::FailureScenario> scenarios;
  for (const AsId target_as : world_.topology().stubs) {
    if (scenarios.size() >= 2) break;
    if (target_as == origin_) continue;
    auto s = gen.make(origin_, target_as, core::FailureDirection::kReverse,
                      false, helper_ases_);
    if (!s) continue;
    const AsId sources[] = {target_as};
    if (!decider.decide(origin_, s->culprit_as, 1000.0, sources).poison ||
        (!scenarios.empty() &&
         scenarios.front().culprit_as == s->culprit_as)) {
      gen.repair(*s);
      continue;
    }
    gen.repair(*s);
    scenarios.push_back(std::move(*s));
  }
  if (scenarios.size() < 2) GTEST_SKIP() << "need two distinct scenarios";

  guard.add_target(scenarios[0].target);
  guard.add_target(scenarios[1].target);
  world_.advance(1300.0);

  // Inject both failures simultaneously.
  for (auto& s : scenarios) {
    s.failure_ids.push_back(world_.failures().inject(
        dp::Failure{.at_as = s.culprit_as, .toward_as = origin_}));
  }
  world_.advance(1500.0);

  // One remediation in flight; the other outage stood down.
  ASSERT_GE(guard.outages().size(), 2u);
  std::size_t applied = 0;
  std::size_t stood_down = 0;
  for (const auto& record : guard.outages()) {
    if (record.action != core::RepairAction::kNone) ++applied;
    if (record.note.find("in flight") != std::string::npos) ++stood_down;
  }
  EXPECT_EQ(applied, 1u);
  EXPECT_GE(stood_down, 1u);

  for (auto& s : scenarios) gen.repair(s);
  world_.advance(600.0);
}

TEST_F(LifeguardEdgeTest, OutageDuringIsolationThatHealsIsClosedCleanly) {
  core::LifeguardConfig cfg;
  cfg.decision.min_elapsed_seconds = 600.0;
  core::Lifeguard guard(world_.scheduler(), world_.engine(), world_.prober(),
                        origin_, cfg);
  guard.set_helpers(make_helpers());
  guard.start();
  world_.advance(700.0);

  workload::ScenarioGenerator gen(world_, 97);
  std::optional<workload::FailureScenario> scenario;
  for (const AsId target_as : world_.topology().stubs) {
    if (target_as == origin_) continue;
    if (auto s = gen.make(origin_, target_as,
                          core::FailureDirection::kReverse, false,
                          helper_ases_)) {
      scenario = std::move(s);
      break;
    }
  }
  ASSERT_TRUE(scenario.has_value());
  gen.repair(*scenario);
  guard.add_target(scenario->target);
  world_.advance(1300.0);

  scenario->failure_ids.push_back(world_.failures().inject(dp::Failure{
      .at_as = scenario->culprit_as, .toward_as = origin_}));
  // Let detection+isolation fire, then heal before the decision gate.
  world_.advance(250.0);
  gen.repair(*scenario);
  world_.advance(900.0);

  ASSERT_FALSE(guard.outages().empty());
  const auto& record = guard.outages().front();
  EXPECT_TRUE(record.resolved_without_action);
  EXPECT_FALSE(guard.remediator().is_poisoned());
  // Monitoring resumed: no further records without new failures.
  const auto records_now = guard.outages().size();
  world_.advance(1200.0);
  EXPECT_EQ(guard.outages().size(), records_now);
}

}  // namespace
}  // namespace lg
