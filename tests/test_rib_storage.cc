// The Internet-scale RIB storage refactor, checked from the outside: interned
// CommunitiesRef semantics, the tag-encoded Adj-RIB-Out (adj_out_state /
// adj_out_unit / record_advertised), delta-encoded export sharing, the
// deterministic rib_memory() accounting — and, as the load-bearing proof,
// a full differential against check::ReferenceBgp plus an InvariantChecker
// sweep on an internet-scale synthetic graph.
#include <gtest/gtest.h>

#include <set>

#include "bgp/engine.h"
#include "bgp/speaker.h"
#include "check/invariants.h"
#include "check/reference_bgp.h"
#include "topology/addressing.h"
#include "topology/generator.h"
#include "util/scheduler.h"

namespace lg {
namespace {

using bgp::AsPath;
using bgp::BgpSpeaker;
using bgp::CommunitiesRef;
using bgp::Communities;
using topo::AsId;
using topo::Prefix;

// ---- CommunitiesRef interning ------------------------------------------

TEST(CommunitiesRefTest, DefaultIsEmptyAndShared) {
  const CommunitiesRef a;
  const CommunitiesRef b;
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.size(), 0u);
  EXPECT_EQ(a, b);
  // Both alias the static empty set: equality is a pointer compare.
  EXPECT_EQ(&a.get(), &b.get());
}

TEST(CommunitiesRefTest, SharesBufferAcrossCopies) {
  const CommunitiesRef a(Communities{1, 2, 3});
  const CommunitiesRef b = a;  // ref copy, no buffer copy
  EXPECT_EQ(&a.get(), &b.get());
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b[1], 2u);
}

TEST(CommunitiesRefTest, ContentEqualityAcrossDistinctBuffers) {
  const CommunitiesRef a(Communities{7, 8});
  const CommunitiesRef b(Communities{7, 8});
  const CommunitiesRef c(Communities{7, 9});
  EXPECT_NE(&a.get(), &b.get());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a, (Communities{7, 8}));
}

// ---- Adj-RIB-Out tag encoding ------------------------------------------

class AdjOutTest : public ::testing::Test {
 protected:
  AdjOutTest() : topo_(topo::make_fig2_topology()) {}

  topo::Fig2Topology topo_;
};

TEST_F(AdjOutTest, FreshSpeakerIsNeverAdvertised) {
  BgpSpeaker sp(topo_.b, topo_.graph);
  const Prefix p = topo::AddressPlan::production_prefix(topo_.o);
  EXPECT_EQ(sp.adj_out_state(p, topo_.a),
            BgpSpeaker::AdjOutState::kNeverAdvertised);
  EXPECT_FALSE(sp.adj_out_unit(p, topo_.a).has_value());
}

TEST_F(AdjOutTest, RecordAdvertisedRoundTrips) {
  BgpSpeaker sp(topo_.b, topo_.graph);
  const Prefix p = topo::AddressPlan::production_prefix(topo_.o);
  BgpSpeaker::ExportUnit unit{AsPath{topo_.b, topo_.o},
                              Communities{42},
                              bgp::AvoidHint{topo_.a, std::nullopt}};
  sp.record_advertised(p, topo_.a, unit);
  EXPECT_EQ(sp.adj_out_state(p, topo_.a), BgpSpeaker::AdjOutState::kAdvertised);
  const auto got = sp.adj_out_unit(p, topo_.a);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, unit);
  // Other sessions are untouched.
  EXPECT_EQ(sp.adj_out_state(p, topo_.c),
            BgpSpeaker::AdjOutState::kNeverAdvertised);
}

TEST_F(AdjOutTest, RecordingNulloptMeansWithdrawn) {
  BgpSpeaker sp(topo_.b, topo_.graph);
  const Prefix p = topo::AddressPlan::production_prefix(topo_.o);
  sp.record_advertised(p, topo_.a,
                       BgpSpeaker::ExportUnit{AsPath{topo_.b, topo_.o}, {}, {}});
  sp.record_advertised(p, topo_.a, std::nullopt);
  // Withdrawn is distinct from never-advertised: the engine must not send a
  // withdrawal on a session that never saw the prefix, but must on this one.
  EXPECT_EQ(sp.adj_out_state(p, topo_.a), BgpSpeaker::AdjOutState::kWithdrawn);
  EXPECT_FALSE(sp.adj_out_unit(p, topo_.a).has_value());
}

TEST_F(AdjOutTest, ExportUnitsShareOnePrependedBuffer) {
  // Delta encoding: after convergence every kAdvertised slot for a
  // re-exported route aliases the speaker's single per-prefix export cache.
  util::Scheduler sched;
  bgp::BgpEngine engine(topo_.graph, sched);
  const Prefix p = topo::AddressPlan::production_prefix(topo_.o);
  bgp::OriginPolicy policy;
  policy.default_path = AsPath{topo_.o};
  engine.originate(topo_.o, p, policy);
  sched.run();

  const BgpSpeaker& b = engine.speaker(topo_.b);
  std::set<const bgp::AsPath*> buffers;
  std::size_t advertised = 0;
  for (const auto& n : topo_.graph.neighbors(topo_.b)) {
    if (b.adj_out_state(p, n.id) != BgpSpeaker::AdjOutState::kAdvertised) {
      continue;
    }
    ++advertised;
    buffers.insert(&b.adj_out_unit(p, n.id)->path.get());
  }
  ASSERT_GE(advertised, 2u) << "fig2 B re-exports to several neighbors";
  EXPECT_EQ(buffers.size(), 1u) << "all Adj-RIB-Out slots share one buffer";
}

// ---- rib_memory accounting ---------------------------------------------

TEST_F(AdjOutTest, RibMemoryCountsRoutesAndBytes) {
  util::Scheduler sched;
  bgp::BgpEngine engine(topo_.graph, sched);
  const Prefix p = topo::AddressPlan::production_prefix(topo_.o);
  bgp::OriginPolicy policy;
  policy.default_path = AsPath{topo_.o};
  engine.originate(topo_.o, p, policy);
  sched.run();

  const auto before = engine.rib_memory();
  EXPECT_GT(before.bytes, 0u);
  EXPECT_GT(before.routes, 0u);
  EXPECT_GT(before.adj_out_slots, 0u);
  EXPECT_GE(before.prefix_states, topo_.graph.num_ases());

  // Per-speaker parts sum to the totals (minus engine-side tables).
  std::size_t routes = 0;
  for (const AsId as : topo_.graph.as_ids()) {
    routes += engine.speaker(as).rib_memory().routes;
  }
  EXPECT_EQ(routes, before.routes);

  // A second prefix strictly grows the accounting.
  engine.originate(topo_.o, topo::AddressPlan::sentinel_prefix(topo_.o),
                   policy);
  sched.run();
  const auto after = engine.rib_memory();
  EXPECT_GT(after.bytes, before.bytes);
  EXPECT_GT(after.routes, before.routes);
}

// ---- Differential + invariants at internet-scale shape ------------------

// ~600 ASes with the internet-scale generator's wiring (preferential
// attachment, peering, multihoming) — big enough to exercise every storage
// path (lazy sizing, sparse hints, withdraw-and-reannounce, damping off).
class InternetScaleDifferentialTest : public ::testing::Test {
 protected:
  InternetScaleDifferentialTest()
      : topo_(topo::generate_internet_scale({.total_ases = 600,
                                             .num_tier1 = 6,
                                             .seed = 911})),
        engine_(topo_.graph, sched_),
        ref_(topo_.graph) {}

  void originate_both(AsId as, const Prefix& prefix,
                      const bgp::OriginPolicy& policy) {
    engine_.originate(as, prefix, policy);
    ref_.originate(as, prefix, policy);
  }

  void converge_and_compare(const std::vector<Prefix>& prefixes) {
    sched_.run();
    ASSERT_TRUE(sched_.empty());
    for (const AsId id : topo_.graph.as_ids()) {
      ref_.config(id) = engine_.speaker(id).config();
    }
    ASSERT_TRUE(ref_.solve(512)) << "reference did not stabilize";
    for (const Prefix& p : prefixes) {
      for (const AsId as : topo_.graph.as_ids()) {
        const bgp::Route* got = engine_.best_route(as, p);
        const check::RefRoute* want = ref_.best_route(as, p);
        ASSERT_EQ(got == nullptr, want == nullptr)
            << "presence mismatch at AS " << as << " for " << p.str();
        if (got == nullptr) continue;
        ASSERT_EQ(got->path, want->path) << "path mismatch at AS " << as;
        ASSERT_EQ(got->neighbor, want->neighbor)
            << "neighbor mismatch at AS " << as;
        ASSERT_EQ(got->communities, want->communities)
            << "communities mismatch at AS " << as;
      }
    }
    const auto violations = check::InvariantChecker(engine_).check_all();
    EXPECT_TRUE(violations.empty())
        << violations.size() << " violations, first: "
        << (violations.empty() ? "" : violations.front().detail);
  }

  topo::GeneratedTopology topo_;
  util::Scheduler sched_;
  bgp::BgpEngine engine_;
  check::ReferenceBgp ref_;
};

TEST_F(InternetScaleDifferentialTest, PlainOriginationAgrees) {
  ASSERT_FALSE(topo_.stubs.empty());
  const AsId origin = topo_.stubs.front();
  const Prefix p = topo::AddressPlan::production_prefix(origin);
  bgp::OriginPolicy policy;
  policy.default_path = AsPath{origin};
  policy.communities = Communities{100, 200};
  originate_both(origin, p, policy);
  converge_and_compare({p});
}

TEST_F(InternetScaleDifferentialTest, PoisonedAndHintedOriginationsAgree) {
  ASSERT_GE(topo_.stubs.size(), 2u);
  const AsId origin = topo_.stubs.front();
  const AsId other = topo_.stubs.back();
  const Prefix p1 = topo::AddressPlan::production_prefix(origin);
  const Prefix p2 = topo::AddressPlan::production_prefix(other);

  // Poison the origin's first provider: O-X-O routes around X.
  const AsId poisoned = topo_.graph.providers(origin).front();
  bgp::OriginPolicy poison;
  poison.default_path = bgp::poisoned_path(origin, {poisoned}, 3);
  originate_both(origin, p1, poison);

  // Second origin attaches an AVOID_PROBLEM hint (sparse hint tables).
  bgp::OriginPolicy hinted;
  hinted.default_path = AsPath{other};
  hinted.avoid_hint = bgp::AvoidHint{topo_.graph.providers(other).front(),
                                     std::nullopt};
  originate_both(other, p2, hinted);
  converge_and_compare({p1, p2});
}

TEST_F(InternetScaleDifferentialTest, WithdrawReannounceAgrees) {
  const AsId origin = topo_.stubs.front();
  const Prefix p = topo::AddressPlan::production_prefix(origin);
  bgp::OriginPolicy policy;
  policy.default_path = AsPath{origin};
  originate_both(origin, p, policy);
  sched_.run();
  engine_.withdraw(origin, p);
  ref_.withdraw(origin, p);
  sched_.run();
  // Re-announce with a prepended path: exercises kWithdrawn -> kAdvertised.
  bgp::OriginPolicy prepended;
  prepended.default_path = AsPath{origin, origin, origin};
  originate_both(origin, p, prepended);
  converge_and_compare({p});
}

}  // namespace
}  // namespace lg
