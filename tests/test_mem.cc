// lg::mem — arena allocation, vector pooling, and the RSS probes backing
// the Internet-scale memory work: bump allocation with alignment, block
// reuse across reset(), env-gated pooling, and sane /proc-derived RSS.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bgp/types.h"
#include "mem/arena.h"
#include "mem/pool.h"
#include "mem/rss.h"

namespace lg::mem {
namespace {

TEST(ArenaTest, AllocatesAlignedMemory) {
  Arena arena;
  void* a = arena.allocate(3, 1);
  void* b = arena.allocate(8, 8);
  void* c = arena.allocate(16, 16);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 16, 0u);
  EXPECT_GE(arena.bytes_allocated(), 3u + 8u + 16u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_allocated());
}

TEST(ArenaTest, CreateConstructsObjects) {
  Arena arena;
  struct Pod {
    int x;
    double y;
  };
  Pod* p = arena.create<Pod>(Pod{7, 2.5});
  EXPECT_EQ(p->x, 7);
  EXPECT_EQ(p->y, 2.5);
  int* xs = arena.allocate_array<int>(100);
  for (int i = 0; i < 100; ++i) xs[i] = i;
  EXPECT_EQ(xs[99], 99);
}

TEST(ArenaTest, ResetReusesBlocks) {
  Arena arena;
  for (int i = 0; i < 1000; ++i) arena.allocate(64, 8);
  const std::size_t reserved = arena.bytes_reserved();
  arena.reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  // Blocks are retained for reuse, not freed.
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  for (int i = 0; i < 1000; ++i) arena.allocate(64, 8);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(ArenaTest, LargeAllocationsGetDedicatedBlocks) {
  Arena arena;
  void* big = arena.allocate(4u << 20, 64);
  ASSERT_NE(big, nullptr);
  EXPECT_GE(arena.bytes_reserved(), 4u << 20);
}

TEST(VectorPoolTest, RecyclesCapacity) {
  VectorPool<int> pool;
  if (!pooling_enabled_from_env()) GTEST_SKIP() << "LG_MEM_POOL=0";
  auto v = pool.acquire();
  v.reserve(256);
  int* data = v.data();
  pool.release(std::move(v));
  EXPECT_EQ(pool.spare_count(), 1u);
  EXPECT_GE(pool.spare_bytes(), 256u * sizeof(int));
  auto w = pool.acquire();
  EXPECT_EQ(w.data(), data);  // same buffer came back
  EXPECT_TRUE(w.empty());     // but cleared
  EXPECT_EQ(pool.spare_count(), 0u);
}

TEST(VectorPoolTest, AcquireFromEmptyPoolIsFresh) {
  VectorPool<bgp::UpdateMessage> pool;
  auto v = pool.acquire();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(pool.spare_count(), 0u);
}

TEST(RssTest, ReportsPlausibleValues) {
  const std::size_t current = current_rss_bytes();
  const std::size_t peak = peak_rss_bytes();
  // Any running test binary is at least 1 MB resident and peak >= current
  // (modulo the probes reading at slightly different instants).
  EXPECT_GT(current, 1u << 20);
  EXPECT_GT(peak, 1u << 20);
  EXPECT_GE(peak + (1u << 20), current);
}

TEST(RssTest, GrowsAfterLargeAllocation) {
  const std::size_t before = peak_rss_bytes();
  std::vector<char> block(64u << 20);
  for (std::size_t i = 0; i < block.size(); i += 4096) block[i] = 1;
  const std::size_t after = peak_rss_bytes();
  EXPECT_GE(after, before + (32u << 20));
}

}  // namespace
}  // namespace lg::mem
