// Workload generators and models: the EC2-calibrated outage distribution
// (Fig. 1/5 inputs), the Table-2 load model, SimWorld wiring, and scenario
// generation invariants.
#include <gtest/gtest.h>

#include "workload/load_model.h"
#include "workload/outages.h"
#include "workload/scenarios.h"
#include "workload/sim_world.h"

namespace lg {
namespace {

using topo::AsId;

TEST(OutageDurationTest, RespectsDetectionFloor) {
  util::Rng rng(1);
  const workload::OutageDurationParams params;
  for (int i = 0; i < 20000; ++i) {
    EXPECT_GE(workload::sample_outage_duration(rng, params),
              params.floor_seconds);
  }
}

TEST(OutageDurationTest, MatchesPaperHeadlineStatistics) {
  const auto study = workload::generate_outage_study(10308);
  // ">90% of outages lasted at most 10 minutes" (§2.1).
  EXPECT_GT(study.cdf(600.0), 0.90);
  // "84% of the total unavailability was due to outages longer than 10
  // minutes" — allow a few points of slack around the calibration target.
  EXPECT_NEAR(study.mass_fraction_above(600.0), 0.84, 0.05);
  // "The median duration of an outage in the study was only 90 seconds
  // (the minimum possible given the methodology)".
  EXPECT_LT(study.median(), 125.0);
  EXPECT_GE(study.median(), 90.0);
}

TEST(OutageDurationTest, ResidualPersistenceMatchesSec42) {
  const auto study = workload::generate_outage_study(10308);
  // "of the problems that persisted for at least 5 minutes, 51% lasted at
  // least another 5 minutes" — the property justifying poisoning.
  const auto n5 = study.count_above(300.0);
  const auto n10 = study.count_above(600.0);
  ASSERT_GT(n5, 0u);
  const double persist = static_cast<double>(n10) / static_cast<double>(n5);
  EXPECT_GT(persist, 0.40);
  EXPECT_LT(persist, 0.70);
}

TEST(OutageDurationTest, ResidualRowsAreMonotoneInputs) {
  const auto study = workload::generate_outage_study(5000);
  const auto rows =
      workload::residual_duration_rows(study, {0.0, 5.0, 10.0, 30.0});
  ASSERT_EQ(rows.size(), 4u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i].surviving, rows[i - 1].surviving);
  }
  // Residual duration *grows* with elapsed time (heavy tail): the paper's
  // core argument for acting on old outages.
  EXPECT_GT(rows[2].mean_residual_min, rows[0].mean_residual_min);
}

TEST(OutageDurationTest, GenerationIsDeterministicPerSeed) {
  const auto a = workload::generate_outage_study(100, {}, 7);
  const auto b = workload::generate_outage_study(100, {}, 7);
  EXPECT_EQ(a.sorted_samples(), b.sorted_samples());
}

TEST(LoadModelTest, ReproducesTable2Anchors) {
  workload::LoadModel model;
  // Paper Table 2: I=0.01, T=0.5 => 137/day at d=15, 58/day at d=60.
  EXPECT_NEAR(model.daily_path_changes(0.01, 0.5, 15.0), 137.0, 5.0);
  EXPECT_NEAR(model.daily_path_changes(0.01, 0.5, 60.0), 58.0, 3.0);
  // And the d=5 extrapolation lands near 393/day.
  EXPECT_NEAR(model.daily_path_changes(0.01, 0.5, 5.0), 393.0, 25.0);
}

TEST(LoadModelTest, ScalesLinearlyInIAndT) {
  workload::LoadModel model;
  const double base = model.daily_path_changes(0.01, 0.5, 15.0);
  EXPECT_NEAR(model.daily_path_changes(0.02, 0.5, 15.0), 2 * base, 1e-9);
  EXPECT_NEAR(model.daily_path_changes(0.01, 1.0, 15.0), 2 * base, 1e-9);
}

TEST(LoadModelTest, CalibrationFromStudyChangesExtrapolation) {
  workload::LoadModel model;
  const double before = model.daily_path_changes(0.01, 0.5, 5.0);
  // A study with a much lighter tail compresses the 5-minute extrapolation.
  workload::OutageDurationParams light_tail;
  light_tail.floor_weight = 0.30;
  light_tail.short_weight = 0.30;
  light_tail.short_cap = 2000.0;
  light_tail.tail_alpha = 2.5;
  const auto study = workload::generate_outage_study(5000, light_tail);
  model.calibrate_extrapolation(study);
  EXPECT_NE(model.daily_path_changes(0.01, 0.5, 5.0), before);
  EXPECT_THROW(model.poisonable_outages_per_day(1.0), std::invalid_argument);
}

TEST(SimWorldTest, InfrastructureIsGloballyRoutedAfterConverge) {
  workload::SimWorld world(workload::SimWorld::small_config(5));
  const auto ases = world.graph().as_ids();
  // Spot-check: first stub can reach every tier's infra.
  const AsId probe_src = world.topology().stubs.front();
  for (const AsId dst :
       {world.topology().tier1.front(), world.topology().large_transit.front(),
        world.topology().stubs.back()}) {
    const auto addr =
        topo::AddressPlan::router_address(topo::RouterId{dst, 0});
    EXPECT_TRUE(world.dataplane().forward(probe_src, addr).delivered())
        << "stub " << probe_src << " cannot reach AS " << dst;
  }
  EXPECT_GT(ases.size(), 100u);
}

TEST(SimWorldTest, FeedAsesAreHighDegreeTransits) {
  workload::SimWorld world(workload::SimWorld::small_config(5));
  const auto feeds = world.feed_ases(10);
  ASSERT_EQ(feeds.size(), 10u);
  for (const AsId as : feeds) {
    EXPECT_EQ(world.graph().tier(as), topo::AsTier::kTransit);
  }
  // Sorted by descending degree.
  for (std::size_t i = 1; i < feeds.size(); ++i) {
    EXPECT_GE(world.graph().degree(feeds[i - 1]),
              world.graph().degree(feeds[i]));
  }
}

TEST(SimWorldTest, StubVantagePointsAreSpreadAndUnique) {
  workload::SimWorld world(workload::SimWorld::small_config(5));
  const auto vps = world.stub_vantage_ases(10);
  ASSERT_EQ(vps.size(), 10u);
  std::set<AsId> unique(vps.begin(), vps.end());
  EXPECT_EQ(unique.size(), vps.size());
}

TEST(ScenarioTest, ReverseScenarioGroundTruthOnReversePath) {
  workload::SimWorld world(workload::SimWorld::small_config(13));
  const auto vps = world.stub_vantage_ases(4);
  for (const AsId as : vps) world.announce_production(as);
  world.converge();

  workload::ScenarioGenerator gen(world, 5);
  int made = 0;
  for (const AsId target : world.topology().stubs) {
    if (target == vps[0]) continue;
    auto scenario =
        gen.make(vps[0], target, core::FailureDirection::kReverse);
    if (!scenario) continue;
    ++made;
    // Culprit is a transit AS, not an endpoint.
    EXPECT_NE(scenario->culprit_as, vps[0]);
    EXPECT_NE(scenario->culprit_as, target);
    EXPECT_NE(world.graph().tier(scenario->culprit_as), topo::AsTier::kStub);
    // The vantage point is cut off while the failure is installed...
    const auto vp_addr = topo::AddressPlan::production_host(vps[0]);
    EXPECT_FALSE(
        world.prober().ping(vps[0], scenario->target, vp_addr).replied);
    // ...and restored on repair.
    gen.repair(*scenario);
    EXPECT_TRUE(
        world.prober().ping(vps[0], scenario->target, vp_addr).replied);
    if (made >= 5) break;
  }
  EXPECT_GE(made, 3);
}

TEST(ScenarioTest, WitnessRequirementRejectsTotalOutages) {
  workload::SimWorld world(workload::SimWorld::small_config(13));
  const auto vps = world.stub_vantage_ases(4);
  for (const AsId as : vps) world.announce_production(as);
  world.converge();

  workload::ScenarioGenerator gen(world, 6);
  // Witness = the vantage point itself is skipped; an impossible witness set
  // (only the vp) means no scenario can qualify.
  const AsId impossible[] = {vps[0]};
  int made = 0;
  for (const AsId target : world.topology().stubs) {
    if (target == vps[0]) continue;
    if (gen.make(vps[0], target, core::FailureDirection::kForward, false,
                 impossible)) {
      ++made;
    }
  }
  EXPECT_EQ(made, 0);
}

TEST(ScenarioTest, LinkGranularityRecordsCulpritLink) {
  workload::SimWorld world(workload::SimWorld::small_config(13));
  const auto vps = world.stub_vantage_ases(4);
  for (const AsId as : vps) world.announce_production(as);
  world.converge();

  workload::ScenarioGenerator gen(world, 7);
  for (const AsId target : world.topology().stubs) {
    if (target == vps[0]) continue;
    auto scenario = gen.make(vps[0], target, core::FailureDirection::kReverse,
                             /*link_granularity=*/true);
    if (!scenario || !scenario->culprit_link) continue;
    EXPECT_TRUE(scenario->culprit_link->a == scenario->culprit_as ||
                scenario->culprit_link->b == scenario->culprit_as);
    gen.repair(*scenario);
    return;
  }
  GTEST_SKIP() << "no link-granularity scenario available";
}

}  // namespace
}  // namespace lg
