// Checkpoint/restore substrate:
//  * util/codec: fixed-width little-endian round-trips, bit-exact doubles,
//    loud failure on truncation and version drift;
//  * util: Rng and Scheduler state round-trips (restore refuses live events);
//  * fleet/checkpoint: metrics / span / trace registry round-trips restore
//    saved contents verbatim;
//  * bgp/snapshot: a quiesced engine re-serializes byte-identically after a
//    load into a fresh engine over the same topology.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "bgp/types.h"
#include "fleet/checkpoint.h"
#include "topology/addressing.h"
#include "util/codec.h"
#include "util/rng.h"
#include "util/scheduler.h"
#include "workload/sim_world.h"

namespace lg {
namespace {

// ------------------------------------------------------------------ codec

TEST(CodecTest, RoundTripsEveryScalarType) {
  util::BinWriter w;
  w.magic(0x54534554u, 3);
  w.u8(0xab);
  w.b(true);
  w.b(false);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(-0.1);
  w.f64(std::numeric_limits<double>::infinity());
  w.str("hello\0world");  // embedded NUL truncates at the literal, fine
  w.vec(std::vector<std::uint32_t>{1, 2, 3},
        [&](std::uint32_t v) { w.u32(v); });
  w.opt(std::optional<double>{2.5}, [&](double v) { w.f64(v); });
  w.opt(std::optional<double>{}, [&](double v) { w.f64(v); });

  const std::string blob = w.take();
  util::BinReader r(blob);
  r.magic(0x54534554u, 3);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_TRUE(r.b());
  EXPECT_FALSE(r.b());
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), -0.1);
  EXPECT_TRUE(std::isinf(r.f64()));
  EXPECT_EQ(r.str(), "hello");
  const auto v = r.vec<std::uint32_t>([&] { return r.u32(); });
  EXPECT_EQ(v, (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_EQ(r.opt<double>([&] { return r.f64(); }), std::optional<double>{2.5});
  EXPECT_EQ(r.opt<double>([&] { return r.f64(); }), std::nullopt);
  EXPECT_TRUE(r.at_end());
}

TEST(CodecTest, DoublesAreBitExact) {
  // A value with no short decimal representation: printf/parse would lose
  // the low bits; the codec must not.
  const double v = 0.1 + 0.2;
  util::BinWriter w;
  w.f64(v);
  const std::string blob = w.take();
  util::BinReader r(blob);
  const double back = r.f64();
  EXPECT_EQ(std::memcmp(&v, &back, sizeof(v)), 0);
}

TEST(CodecTest, FailsLoudlyOnCorruption) {
  util::BinWriter w;
  w.magic(0x31474154u, 1);
  w.u64(7);
  const std::string blob = w.take();

  util::BinReader wrong_tag(blob);
  EXPECT_THROW(wrong_tag.magic(0x32474154u, 1), std::runtime_error);
  util::BinReader wrong_version(blob);
  EXPECT_THROW(wrong_version.magic(0x31474154u, 2), std::runtime_error);

  const std::string truncated = blob.substr(0, blob.size() - 4);
  util::BinReader r(truncated);
  r.magic(0x31474154u, 1);
  EXPECT_THROW(r.u64(), std::runtime_error);

  // A length prefix larger than the remaining blob must throw before any
  // allocation, not attempt an attacker-sized reserve.
  util::BinWriter w2;
  w2.u64(std::numeric_limits<std::uint64_t>::max());
  const std::string huge = w2.take();
  util::BinReader r2(huge);
  EXPECT_THROW(r2.str(), std::runtime_error);
}

// -------------------------------------------------------------------- rng

TEST(RngStateTest, RestoreContinuesIdenticalSequence) {
  util::Rng a(123, 456);
  (void)a.normal(0.0, 1.0);  // populate the cached-normal half
  const auto state = a.save_state();
  std::vector<double> expect;
  for (int i = 0; i < 8; ++i) expect.push_back(a.normal(0.0, 1.0));

  util::Rng b;  // different seed entirely; restore must overwrite all of it
  b.restore_state(state);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(b.normal(0.0, 1.0), expect[i]);
}

// -------------------------------------------------------------- scheduler

TEST(SchedulerStateTest, RoundTripsCountersAndRefusesLiveEvents) {
  util::Scheduler s;
  int fired = 0;
  s.at(1.0, [&] { ++fired; });
  s.at(2.0, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 2);
  const auto state = s.save_state();
  EXPECT_DOUBLE_EQ(state.now, 2.0);
  EXPECT_EQ(state.executed, 2u);

  util::Scheduler fresh;
  fresh.restore_state(state);
  EXPECT_DOUBLE_EQ(fresh.now(), 2.0);
  EXPECT_EQ(fresh.executed(), 2u);

  // Closures cannot be serialized: restoring over pending events would
  // silently drop them, so it must throw instead.
  util::Scheduler busy;
  busy.at(5.0, [] {});
  EXPECT_THROW(busy.restore_state(state), std::runtime_error);
}

// ------------------------------------------------------------- registries

TEST(CheckpointTest, MetricsRegistryRoundTripsVerbatim) {
  obs::MetricsRegistry reg;
  reg.set_enabled(true);
  reg.counter("a.count").inc(41);
  reg.counter("a.count").inc();
  reg.gauge("b.gauge").set(17.5);
  reg.gauge("b.gauge").set(3.25);  // max must survive too
  auto& d = reg.distribution("c.dist");
  for (const double v : {1.0, 2.0, 7.5, -3.0}) d.observe(v);

  util::BinWriter w;
  fleet::save_metrics(w, reg);
  const std::string blob = w.take();

  // Restore targets a fresh registry (the service-plane restore path always
  // does); merge-into-nonempty is not part of the contract.
  obs::MetricsRegistry back;
  back.set_enabled(true);
  util::BinReader r(blob);
  fleet::load_metrics(r, back);

  EXPECT_EQ(back.counter("a.count").value(), 42u);
  EXPECT_DOUBLE_EQ(back.gauge("b.gauge").value(), 3.25);
  // Byte-level check: re-saving the restored registry reproduces the blob
  // exactly (same names, same order, same bit patterns).
  util::BinWriter w2;
  fleet::save_metrics(w2, back);
  EXPECT_EQ(blob, w2.blob());
}

TEST(CheckpointTest, SpanRegistryRoundTripsVerbatim) {
  obs::SpanRegistry reg;
  reg.set_enabled(true);
  const auto root = reg.begin(0.0, "root", 0, 1, 2);
  const auto child = reg.begin(1.0, "child", root);
  reg.annotate(child, "key", 2.5);
  reg.end(child, 3.0);
  reg.end(root, 4.0);
  const auto open = reg.begin(5.0, "still-open");
  (void)open;

  util::BinWriter w;
  fleet::save_spans(w, reg);
  const std::string blob = w.take();

  obs::SpanRegistry back;
  util::BinReader r(blob);
  fleet::load_spans(r, back);
  ASSERT_EQ(back.records().size(), reg.records().size());

  util::BinWriter w2;
  fleet::save_spans(w2, back);
  EXPECT_EQ(blob, w2.blob());

  // The restored id stream continues where the original would have: the
  // next span begun on either registry gets the same id.
  const auto a = reg.begin(6.0, "next");
  const auto b = back.begin(6.0, "next");
  EXPECT_EQ(a, b);
}

TEST(CheckpointTest, TraceRingRoundTripsVerbatim) {
  obs::TraceRing ring(8);
  ring.set_enabled(true);
  for (int i = 0; i < 12; ++i) {  // overflow the ring: oldest four drop
    ring.record(static_cast<double>(i), obs::TraceKind::kEpisodeOpened,
                static_cast<std::uint64_t>(i), 0, 0.5 * i);
  }
  util::BinWriter w;
  fleet::save_trace(w, ring);
  const std::string blob = w.take();

  obs::TraceRing back(8);
  back.set_enabled(true);
  util::BinReader r(blob);
  fleet::load_trace(r, back);
  EXPECT_EQ(back.recorded(), ring.recorded());
  EXPECT_EQ(back.dropped(), ring.dropped());
  const auto a = ring.events();
  const auto b = back.events();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].t, b[i].t);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].a, b[i].a);
  }
}

// ---------------------------------------------------------- bgp snapshot

TEST(EngineSnapshotTest, QuiescedEngineReserializesByteIdentically) {
  workload::SimWorldConfig wc = workload::SimWorld::small_config(7);
  workload::SimWorld world(wc);
  // Some real announcement state on top of the infrastructure baseline:
  // a plain origination and a selective policy with a poisoned default.
  const topo::AsId origin = world.topology().stubs.front();
  bgp::OriginPolicy pol;
  pol.default_path = bgp::PathRef(bgp::poisoned_path(
      origin, {world.topology().stubs.back()}, 3));
  world.engine().originate(origin, topo::AddressPlan::production_prefix(origin),
                           std::move(pol));
  world.converge();

  util::BinWriter w;
  world.engine().save_snapshot(w);
  const std::string blob = w.take();

  workload::SimWorld fresh(wc);
  fresh.converge();
  util::BinReader r(blob);
  fresh.engine().load_snapshot(r);

  util::BinWriter w2;
  fresh.engine().save_snapshot(w2);
  EXPECT_EQ(blob, w2.blob()) << "snapshot does not round-trip bit-exactly";
}

}  // namespace
}  // namespace lg
