// End-to-end orchestrator integration: detect -> isolate -> wait out the
// transient window -> poison -> sentinel detects repair -> unpoison. This is
// the paper's §6 case study in miniature.
#include <gtest/gtest.h>

#include "core/lifeguard.h"
#include "workload/scenarios.h"
#include "workload/sim_world.h"

namespace lg {
namespace {

using core::FailureDirection;
using core::Lifeguard;
using core::LifeguardConfig;
using core::RepairAction;
using topo::AsId;

class LifeguardTest : public ::testing::Test {
 protected:
  LifeguardTest() : world_(workload::SimWorld::small_config(31)) {}

  // Pick an origin stub with >= 2 providers so poisoning is permissible.
  AsId pick_origin() {
    for (const AsId as : world_.topology().stubs) {
      if (world_.graph().providers(as).size() >= 2) return as;
    }
    ADD_FAILURE() << "no multihomed stub in topology";
    return topo::kInvalidAs;
  }

  workload::SimWorld world_;
};

TEST_F(LifeguardTest, FullReverseFailureRepairCycle) {
  const AsId origin = pick_origin();
  LifeguardConfig cfg;
  cfg.decision.min_elapsed_seconds = 300.0;
  Lifeguard guard(world_.scheduler(), world_.engine(), world_.prober(),
                  origin, cfg);

  // Helper vantage points for spoofed probing.
  std::vector<measure::VantagePoint> helpers;
  for (const AsId as : world_.stub_vantage_ases(5)) {
    if (as == origin) continue;
    world_.announce_production(as);
    helpers.push_back(measure::VantagePoint::in_as(as));
  }
  guard.set_helpers(helpers);
  guard.start();
  world_.advance(700.0);  // baseline converged, one atlas round done

  // Find a viable reverse-failure scenario against some monitored target.
  workload::ScenarioGenerator gen(world_, 41);
  std::optional<workload::FailureScenario> scenario;
  for (const AsId target_as : world_.topology().stubs) {
    if (target_as == origin) continue;
    std::vector<AsId> witness_ases;
    for (const auto& h : helpers) witness_ases.push_back(h.as);
    auto s = gen.make(origin, target_as, FailureDirection::kReverse, false, witness_ases);
    if (!s) continue;
    // The decider must be willing: alternate must exist and culprit must
    // not be the sole provider.
    core::PoisonDecider decider(world_.graph());
    const AsId sources[] = {target_as};
    if (!decider.decide(origin, s->culprit_as, 1000.0, sources).poison) {
      gen.repair(*s);
      continue;
    }
    scenario = std::move(s);
    break;
  }
  ASSERT_TRUE(scenario.has_value()) << "no poisonable scenario found";
  // The scenario injected its failure mid-setup; pull it out, register the
  // target, warm the atlas, then re-inject to start the outage clock.
  gen.repair(*scenario);
  guard.add_target(scenario->target);
  world_.advance(1300.0);  // a monitoring + atlas round with healthy paths

  scenario->failure_ids.push_back(world_.failures().inject(dp::Failure{
      .at_as = scenario->culprit_as, .toward_as = origin}));
  world_.advance(1500.0);

  ASSERT_EQ(guard.outages().size(), 1u);
  const auto& record = guard.outages().front();
  EXPECT_EQ(record.isolation.direction, FailureDirection::kReverse);
  EXPECT_EQ(record.isolation.blamed_as, scenario->culprit_as);
  EXPECT_EQ(record.action, RepairAction::kPoison);
  EXPECT_GT(record.remediated_at, record.detected_at);
  EXPECT_TRUE(guard.remediator().is_poisoned());
  EXPECT_EQ(guard.remediator().current_poison(), scenario->culprit_as);
  // Repair not yet observed: the underlying failure persists.
  EXPECT_LT(record.repaired_at, 0.0);

  // The poison restores connectivity on the production prefix.
  const auto vp = guard.vantage();
  EXPECT_TRUE(world_.prober()
                  .ping(vp.as, scenario->target, vp.addr)
                  .replied);

  // Operator fixes the underlying problem; sentinel notices, poison lifts.
  gen.repair(*scenario);
  world_.advance(400.0);
  EXPECT_FALSE(guard.remediator().is_poisoned());
  EXPECT_GT(guard.outages().front().repaired_at, 0.0);
  EXPECT_GE(guard.outages().front().reverted_at,
            guard.outages().front().repaired_at);
}

TEST_F(LifeguardTest, TransientOutageResolvesWithoutPoisoning) {
  const AsId origin = pick_origin();
  LifeguardConfig cfg;
  cfg.decision.min_elapsed_seconds = 300.0;
  Lifeguard guard(world_.scheduler(), world_.engine(), world_.prober(),
                  origin, cfg);
  std::vector<measure::VantagePoint> helpers;
  for (const AsId as : world_.stub_vantage_ases(5)) {
    if (as == origin) continue;
    world_.announce_production(as);
    helpers.push_back(measure::VantagePoint::in_as(as));
  }
  guard.set_helpers(helpers);
  guard.start();
  world_.advance(700.0);

  workload::ScenarioGenerator gen(world_, 43);
  std::optional<workload::FailureScenario> scenario;
  for (const AsId target_as : world_.topology().stubs) {
    if (target_as == origin) continue;
    std::vector<AsId> witness_ases;
    for (const auto& h : helpers) witness_ases.push_back(h.as);
    if (auto s = gen.make(origin, target_as, FailureDirection::kReverse, false, witness_ases)) {
      scenario = std::move(s);
      break;
    }
  }
  ASSERT_TRUE(scenario.has_value());
  gen.repair(*scenario);
  guard.add_target(scenario->target);
  world_.advance(1300.0);

  // Outage lasts ~3 minutes: detected, but repaired before the poison gate.
  scenario->failure_ids.push_back(world_.failures().inject(dp::Failure{
      .at_as = scenario->culprit_as, .toward_as = origin}));
  world_.advance(180.0);
  gen.repair(*scenario);
  world_.advance(600.0);

  ASSERT_GE(guard.outages().size(), 1u);
  const auto& record = guard.outages().front();
  EXPECT_TRUE(record.resolved_without_action);
  EXPECT_EQ(record.action, RepairAction::kNone);
  EXPECT_FALSE(guard.remediator().is_poisoned());
}

TEST_F(LifeguardTest, NoFailureMeansNoOutageRecords) {
  const AsId origin = pick_origin();
  Lifeguard guard(world_.scheduler(), world_.engine(), world_.prober(),
                  origin);
  const auto targets = world_.stub_vantage_ases(8);
  for (const AsId as : targets) {
    if (as == origin) continue;
    // Monitor only targets that answer probes — the deployment picks
    // responsive routers, and the responsiveness DB exists for the rest.
    const auto addr =
        topo::AddressPlan::router_address(topo::RouterId{as, 0});
    if (!world_.prober().target_responds(addr)) continue;
    guard.add_target(addr);
  }
  guard.start();
  world_.advance(3600.0);
  EXPECT_TRUE(guard.outages().empty());
  EXPECT_FALSE(guard.remediator().is_poisoned());
  EXPECT_GT(guard.atlas().refreshes(), 0u);
}

}  // namespace
}  // namespace lg
