// §7.2 DNS-failover repair detection and the Fig. 3 link-granularity
// remediation path in the orchestrator.
#include <gtest/gtest.h>

#include "core/dns_failover.h"
#include "core/lifeguard.h"
#include "topology/generator.h"
#include "workload/scenarios.h"
#include "workload/sim_world.h"

namespace lg {
namespace {

using topo::AsId;

class DnsFailoverTest : public ::testing::Test {
 protected:
  DnsFailoverTest() : world_(workload::SimWorld::small_config(61)) {
    for (const AsId as : world_.topology().stubs) {
      if (world_.graph().providers(as).size() >= 2) {
        origin_ = as;
        break;
      }
    }
    client_ = topo::kInvalidAs;
    for (const AsId as : world_.stub_vantage_ases(6)) {
      if (as != origin_) {
        client_ = as;
        world_.announce_production(as);
      }
    }
    world_.converge();
  }

  workload::SimWorld world_;
  AsId origin_ = topo::kInvalidAs;
  AsId client_ = topo::kInvalidAs;
};

TEST_F(DnsFailoverTest, RoutingIsConsistentAcrossServicePrefixes) {
  core::DnsFailoverMonitor monitor(world_.engine(), world_.prober(), origin_);
  monitor.announce_both();
  world_.converge();
  // The paper's Google experiment: clients reach all of the provider's
  // prefixes over the same AS path when nothing is poisoned.
  for (const AsId as : world_.stub_vantage_ases(8)) {
    if (as == origin_) continue;
    EXPECT_TRUE(monitor.routing_consistent_for(as)) << "client AS " << as;
  }
}

TEST_F(DnsFailoverTest, AlternatePrefixTracksOriginalPathHealth) {
  core::DnsFailoverMonitor monitor(world_.engine(), world_.prober(), origin_);
  monitor.announce_both();
  world_.converge();
  ASSERT_TRUE(monitor.client_reaches_alternate(client_));

  // Reverse failure on the client's path toward the origin.
  workload::ScenarioGenerator gen(world_, 71);
  auto scenario =
      gen.make(client_, origin_, core::FailureDirection::kForward);
  // (client -> origin direction failure == "reverse" from origin's view)
  if (!scenario) GTEST_SKIP() << "no scenario";

  // Poison the culprit on the primary only.
  monitor.poison_primary(scenario->culprit_as);
  world_.converge();
  EXPECT_TRUE(monitor.primary_poisoned());

  // The alternate prefix still follows the broken path: unreachable.
  EXPECT_FALSE(monitor.client_reaches_alternate(client_));
  // The poisoned primary routed around: reachable again.
  const auto p1_addr = monitor.primary().addr() + 1;
  const auto client_addr = topo::AddressPlan::production_host(client_);
  EXPECT_TRUE(world_.prober().ping(client_, p1_addr, client_addr).replied);

  // Repair the underlying failure: the alternate heals, signalling unpoison.
  gen.repair(*scenario);
  EXPECT_TRUE(monitor.client_reaches_alternate(client_));
  monitor.unpoison_primary();
  world_.converge();
  EXPECT_FALSE(monitor.primary_poisoned());
  EXPECT_TRUE(world_.prober().ping(client_, p1_addr, client_addr).replied);
}

TEST_F(DnsFailoverTest, PrefixesAreDistinctAndBothRouted) {
  core::DnsFailoverMonitor monitor(world_.engine(), world_.prober(), origin_);
  EXPECT_NE(monitor.primary(), monitor.alternate());
  EXPECT_FALSE(monitor.primary().covers(monitor.alternate()));
  monitor.announce_both();
  world_.converge();
  for (const auto& prefix : {monitor.primary(), monitor.alternate()}) {
    const auto* route = world_.engine().best_route(client_, prefix);
    EXPECT_NE(route, nullptr) << prefix.str();
  }
}

// ---- Fig. 3 link-granularity remediation inside the orchestrator ----

TEST(LifeguardSelectiveTest, LinkBlameTriggersSelectivePoisoning) {
  // Hand-wire the Fig. 3 world (O multihomed via disjoint chains to A).
  const auto topo = topo::make_fig3_topology();
  util::Scheduler sched;
  bgp::BgpEngine engine(topo.graph, sched);
  dp::RouterNet net(topo.graph);
  dp::FailureInjector failures;
  dp::DataPlane dataplane(engine, net, failures);
  measure::Responsiveness resp(
      measure::ResponsivenessConfig{.never_respond_frac = 0.0});
  measure::Prober prober(dataplane, resp);
  for (const AsId as : topo.graph.as_ids()) {
    bgp::OriginPolicy infra;
    infra.default_path = bgp::AsPath{as};
    engine.originate(as, topo::AddressPlan::infrastructure_prefix(as), infra);
  }
  // Helper VPs at C1 and C4 (clean-side and B2-side).
  for (const AsId as : {topo.c1, topo.c4}) {
    bgp::OriginPolicy prod;
    prod.default_path = bgp::AsPath{as};
    engine.originate(as, topo::AddressPlan::production_prefix(as), prod);
  }
  sched.run();

  core::LifeguardConfig cfg;
  cfg.decision.min_elapsed_seconds = 300.0;
  core::Lifeguard guard(sched, engine, prober, topo.o, cfg);
  guard.set_helpers({measure::VantagePoint::in_as(topo.c1),
                     measure::VantagePoint::in_as(topo.c4)});
  // Monitor C3's core router (C3 is captive behind A, riding the A-B2
  // chain toward O).
  const auto target =
      topo::AddressPlan::router_address(topo::RouterId{topo.c3, 0});
  guard.add_target(target);
  guard.start();
  sched.run(sched.now() + 700.0);

  // Silent failure on the A->B2 link for traffic toward O.
  failures.inject(dp::Failure{.at_link = topo::AsLinkKey(topo.a, topo.b2),
                              .direction_from = topo.a,
                              .toward_as = topo.o});
  sched.run(sched.now() + 1500.0);

  ASSERT_FALSE(guard.outages().empty());
  const auto& record = guard.outages().front();
  EXPECT_EQ(record.isolation.direction, core::FailureDirection::kReverse);
  ASSERT_TRUE(record.isolation.blamed_link.has_value());
  EXPECT_EQ(*record.isolation.blamed_link, topo::AsLinkKey(topo.a, topo.b2));
  EXPECT_EQ(record.action, core::RepairAction::kSelectivePoison);
  // A keeps a route (via the clean B1 chain) — it was steered, not cut.
  const auto* a_route = engine.best_route(
      topo.a, topo::AddressPlan::production_prefix(topo.o));
  ASSERT_NE(a_route, nullptr);
  EXPECT_FALSE(bgp::path_traverses(a_route->path, topo.b2, topo.o));
  // And the monitored path works again.
  const auto vp = guard.vantage();
  EXPECT_TRUE(prober.ping(vp.as, target, vp.addr).replied);
}

}  // namespace
}  // namespace lg
