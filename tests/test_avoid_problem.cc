// The idealized AVOID_PROBLEM(X, P) primitive (§3): Avoidance, Backup, and
// Notification properties on the Fig. 2 topology, plus its contrast with
// poisoning (which sacrifices the Backup property for deployability).
#include <gtest/gtest.h>

#include "bgp/engine.h"
#include "topology/addressing.h"
#include "topology/generator.h"
#include "util/scheduler.h"

namespace lg {
namespace {

using topo::AsId;

class AvoidProblemTest : public ::testing::Test {
 protected:
  AvoidProblemTest()
      : topo_(topo::make_fig2_topology()), engine_(topo_.graph, sched_) {}

  topo::Prefix announce(std::optional<bgp::AvoidHint> hint) {
    const auto prefix = topo::AddressPlan::production_prefix(topo_.o);
    bgp::OriginPolicy policy;
    policy.default_path = bgp::baseline_path(topo_.o, 3);
    policy.avoid_hint = hint;
    engine_.originate(topo_.o, prefix, policy);
    sched_.run();
    return prefix;
  }

  topo::Fig2Topology topo_;
  util::Scheduler sched_;
  bgp::BgpEngine engine_;
};

TEST_F(AvoidProblemTest, AvoidancePropertyRoutesAroundHintedAs) {
  const auto prefix = announce(std::nullopt);
  ASSERT_EQ(engine_.best_route(topo_.e, prefix)->neighbor, topo_.a);

  announce(bgp::AvoidHint{.as = topo_.a});
  // E knows a route avoiding A (via D): it must select it even though the
  // A route is shorter.
  EXPECT_EQ(engine_.best_route(topo_.e, prefix)->neighbor, topo_.d);
}

TEST_F(AvoidProblemTest, BackupPropertyKeepsCaptivesConnected) {
  const auto prefix = announce(bgp::AvoidHint{.as = topo_.a});
  // F only knows routes through A: unlike poisoning, the primitive leaves
  // it free to keep using them — no sentinel needed.
  const auto* f_route = engine_.best_route(topo_.f, prefix);
  ASSERT_NE(f_route, nullptr);
  EXPECT_EQ(f_route->neighbor, topo_.a);
  // And A itself keeps its preferred route.
  EXPECT_NE(engine_.best_route(topo_.a, prefix), nullptr);
}

TEST_F(AvoidProblemTest, NotificationPropertyAlertsTheProblemAs) {
  EXPECT_EQ(engine_.speaker(topo_.a).avoid_notifications(), 0u);
  announce(bgp::AvoidHint{.as = topo_.a});
  EXPECT_GT(engine_.speaker(topo_.a).avoid_notifications(), 0u);
}

TEST_F(AvoidProblemTest, LinkHintOnlyAffectsPathsCrossingIt) {
  const auto prefix = announce(std::nullopt);
  ASSERT_EQ(engine_.best_route(topo_.e, prefix)->neighbor, topo_.a);
  // Hint against the A-B link: E's A route crosses it (E-A-B-O); the D
  // route does not (E-D-C-B-O).
  announce(bgp::AvoidHint{.as = topo_.a,
                          .link = topo::AsLinkKey(topo_.a, topo_.b)});
  EXPECT_EQ(engine_.best_route(topo_.e, prefix)->neighbor, topo_.d);
  // F's only route crosses the link: Backup keeps it usable.
  EXPECT_EQ(engine_.best_route(topo_.f, prefix)->neighbor, topo_.a);
}

TEST_F(AvoidProblemTest, ClearingTheHintRestoresPreferredRoutes) {
  const auto prefix = announce(bgp::AvoidHint{.as = topo_.a});
  ASSERT_EQ(engine_.best_route(topo_.e, prefix)->neighbor, topo_.d);
  announce(std::nullopt);
  EXPECT_EQ(engine_.best_route(topo_.e, prefix)->neighbor, topo_.a);
}

TEST_F(AvoidProblemTest, DishonoringAsIgnoresHints) {
  engine_.speaker(topo_.e).mutable_config().honors_avoid_hints = false;
  const auto prefix = announce(bgp::AvoidHint{.as = topo_.a});
  EXPECT_EQ(engine_.best_route(topo_.e, prefix)->neighbor, topo_.a);
}

TEST_F(AvoidProblemTest, HintSurvivesTier1CommunityStripping) {
  // Unlike communities, the hint is modeled as a protected/signed attribute
  // that even community-stripping networks forward.
  engine_.speaker(topo_.b).mutable_config().strips_communities = true;
  const auto prefix = announce(bgp::AvoidHint{.as = topo_.a});
  const auto* route = engine_.best_route(topo_.d, prefix);
  ASSERT_NE(route, nullptr);
  ASSERT_TRUE(route->avoid_hint.has_value());
  EXPECT_EQ(route->avoid_hint->as, topo_.a);
}

TEST_F(AvoidProblemTest, PrimitiveVsPoisoningOnCaptives) {
  // The deployability trade the paper describes: poisoning approximates
  // Avoidance but cuts captives off the specific prefix (they need the
  // sentinel); the primitive keeps everyone routed.
  const auto prefix = announce(bgp::AvoidHint{.as = topo_.a});
  std::size_t routed_with_primitive = 0;
  for (const AsId as : topo_.graph.as_ids()) {
    if (as == topo_.o) continue;
    if (engine_.best_route(as, prefix) != nullptr) ++routed_with_primitive;
  }

  bgp::OriginPolicy poisoned;
  poisoned.default_path = bgp::poisoned_path(topo_.o, {topo_.a}, 3);
  engine_.originate(topo_.o, prefix, poisoned);
  sched_.run();
  std::size_t routed_with_poison = 0;
  for (const AsId as : topo_.graph.as_ids()) {
    if (as == topo_.o) continue;
    if (engine_.best_route(as, prefix) != nullptr) ++routed_with_poison;
  }
  EXPECT_EQ(routed_with_primitive, topo_.graph.num_ases() - 1);
  EXPECT_LT(routed_with_poison, routed_with_primitive);
}

}  // namespace
}  // namespace lg
