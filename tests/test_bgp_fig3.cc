// Figure 3: selective poisoning steers traffic off one of A's links without
// cutting A off and without disturbing uninvolved networks.
#include <gtest/gtest.h>

#include "bgp/engine.h"
#include "check/audit.h"
#include "core/remediation.h"
#include "topology/generator.h"
#include "util/scheduler.h"

namespace lg {
namespace {

using bgp::AsPath;
using topo::AsId;

class Fig3Test : public ::testing::Test {
 protected:
  Fig3Test()
      : topo_(topo::make_fig3_topology()),
        engine_(topo_.graph, sched_),
        remediator_(engine_, topo_.o) {
    remediator_.announce_baseline();
    sched_.run();
    check::maybe_audit(engine_, "fig3 baseline");
  }

  const bgp::Route* route_of(AsId as) {
    return engine_.best_route(as, remediator_.production_prefix());
  }
  AsId first_hop(AsId as) {
    const auto* r = route_of(as);
    return r == nullptr ? topo::kInvalidAs : r->neighbor;
  }

  topo::Fig3Topology topo_;
  util::Scheduler sched_;
  bgp::BgpEngine engine_;
  core::Remediator remediator_;
};

TEST_F(Fig3Test, BaselineAPrefersTheB2Chain) {
  // Both customer chains have equal length; A's tie-break picks the lower
  // neighbor ASN, which is B2 by construction.
  ASSERT_NE(route_of(topo_.a), nullptr);
  EXPECT_EQ(first_hop(topo_.a), topo_.b2);
  // A's customers follow it.
  EXPECT_EQ(first_hop(topo_.c2), topo_.a);
  EXPECT_EQ(first_hop(topo_.c3), topo_.a);
  // C4 sits behind B2, C1 behind B1.
  EXPECT_EQ(first_hop(topo_.c4), topo_.b2);
  EXPECT_EQ(first_hop(topo_.c1), topo_.b1);
}

TEST_F(Fig3Test, SelectivePoisonShiftsAOffTheFailingLink) {
  // Suppose the A-B2 link fails silently. Poison A only via D2: A receives
  // the poisoned path from the B2 side and the clean path from the B1 side.
  const AsId poisoned_providers[] = {topo_.d2};
  remediator_.selective_poison(topo_.a, poisoned_providers);
  sched_.run();

  // A keeps a route — via the B1 chain now.
  ASSERT_NE(route_of(topo_.a), nullptr);
  EXPECT_EQ(first_hop(topo_.a), topo_.b1);
  EXPECT_FALSE(
      bgp::path_traverses(route_of(topo_.a)->path, topo_.b2, topo_.o));
  // A's customers follow A away from the failed link.
  EXPECT_EQ(first_hop(topo_.c3), topo_.a);
  EXPECT_FALSE(
      bgp::path_traverses(route_of(topo_.c3)->path, topo_.b2, topo_.o));
}

TEST_F(Fig3Test, SelectivePoisonDoesNotDisturbOtherRoutes) {
  const auto c4_nh = first_hop(topo_.c4);
  const auto c1_nh = first_hop(topo_.c1);
  const auto b2_nh = first_hop(topo_.b2);
  const auto c1_path_before = route_of(topo_.c1)->path;

  const AsId poisoned_providers[] = {topo_.d2};
  remediator_.selective_poison(topo_.a, poisoned_providers);
  sched_.run();

  // C4 keeps routing via B2-D2 (its traffic never crossed the A-B2 link),
  // and B2 itself still has its customer route via D2: the link is avoided
  // without cutting off either endpoint — this is what plain poisoning or
  // selective advertising cannot do (§3.1.2). Their AS_PATH attributes pick
  // up the poisoned suffix (it propagated through D2), but no network other
  // than A changes which neighbor it routes through.
  EXPECT_EQ(first_hop(topo_.c4), c4_nh);
  EXPECT_EQ(first_hop(topo_.b2), b2_nh);
  EXPECT_TRUE(
      bgp::path_traverses(route_of(topo_.c4)->path, topo_.d2, topo_.o));
  // C1, on the clean (B1) side, is bit-for-bit untouched.
  EXPECT_EQ(first_hop(topo_.c1), c1_nh);
  EXPECT_EQ(route_of(topo_.c1)->path, c1_path_before);
}

TEST_F(Fig3Test, FullPoisonWouldCutAEntirely) {
  // Contrast: poisoning A via both providers leaves A without a production
  // route at all.
  remediator_.poison(topo_.a);
  sched_.run();
  EXPECT_EQ(route_of(topo_.a), nullptr);
  // And C2/C3 (captives of A) lose the production prefix too.
  EXPECT_EQ(route_of(topo_.c2), nullptr);
  EXPECT_EQ(route_of(topo_.c3), nullptr);
}

TEST_F(Fig3Test, SelectiveAdvertisingMovesEveryoneUnlikeSelectivePoisoning) {
  // The §2.3 critique: withdrawing entirely from D2 (selective advertising)
  // forces C4 — which had a perfectly working path — to change routes.
  bgp::OriginPolicy policy;
  policy.default_path = bgp::baseline_path(topo_.o, 3);
  policy.per_neighbor[topo_.d2] = std::nullopt;
  engine_.originate(topo_.o, remediator_.production_prefix(), policy);
  sched_.run();
  ASSERT_NE(route_of(topo_.c4), nullptr);
  EXPECT_TRUE(
      bgp::path_traverses(route_of(topo_.c4)->path, topo_.d1, topo_.o))
      << "C4 should have been forced onto the D1 chain";
}

TEST_F(Fig3Test, UnpoisonRestoresB2Chain) {
  const AsId poisoned_providers[] = {topo_.d2};
  remediator_.selective_poison(topo_.a, poisoned_providers);
  sched_.run();
  remediator_.unpoison();
  sched_.run();
  EXPECT_EQ(first_hop(topo_.a), topo_.b2);
}

}  // namespace
}  // namespace lg
