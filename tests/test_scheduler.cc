#include "util/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

namespace lg::util {
namespace {

TEST(SchedulerTest, RunsEventsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.at(3.0, [&] { order.push_back(3); });
  sched.at(1.0, [&] { order.push_back(1); });
  sched.at(2.0, [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sched.now(), 3.0);
}

TEST(SchedulerTest, EqualTimestampsAreFifo) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.at(5.0, [&order, i] { order.push_back(i); });
  }
  sched.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SchedulerTest, AfterSchedulesRelative) {
  Scheduler sched;
  double fired_at = -1;
  sched.at(10.0, [&] {
    sched.after(5.0, [&] { fired_at = sched.now(); });
  });
  sched.run();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(SchedulerTest, PastTimesClampToNow) {
  Scheduler sched;
  double fired_at = -1;
  sched.at(10.0, [&] {
    sched.at(1.0, [&] { fired_at = sched.now(); });  // in the past
  });
  sched.run();
  EXPECT_DOUBLE_EQ(fired_at, 10.0);
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler sched;
  bool fired = false;
  const auto id = sched.at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sched.cancel(id));
  EXPECT_FALSE(sched.cancel(id));  // double-cancel is a no-op
  sched.run();
  EXPECT_FALSE(fired);
}

TEST(SchedulerTest, RunUntilStopsEarly) {
  Scheduler sched;
  int count = 0;
  sched.at(1.0, [&] { ++count; });
  sched.at(10.0, [&] { ++count; });
  sched.run(5.0);
  EXPECT_EQ(count, 1);
  EXPECT_DOUBLE_EQ(sched.now(), 5.0);  // clock advances to the bound
  sched.run();
  EXPECT_EQ(count, 2);
}

TEST(SchedulerTest, EventsScheduledDuringRunExecute) {
  Scheduler sched;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sched.after(1.0, recurse);
  };
  sched.after(1.0, recurse);
  sched.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(sched.now(), 5.0);
}

TEST(SchedulerTest, PendingAndExecutedCounters) {
  Scheduler sched;
  sched.at(1.0, [] {});
  sched.at(2.0, [] {});
  EXPECT_EQ(sched.pending(), 2u);
  EXPECT_FALSE(sched.empty());
  sched.run();
  EXPECT_EQ(sched.pending(), 0u);
  EXPECT_TRUE(sched.empty());
  EXPECT_EQ(sched.executed(), 2u);
}

TEST(SchedulerTest, StepExecutesExactlyOne) {
  Scheduler sched;
  int count = 0;
  sched.at(1.0, [&] { ++count; });
  sched.at(2.0, [&] { ++count; });
  EXPECT_TRUE(sched.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sched.step());
  EXPECT_FALSE(sched.step());
  EXPECT_EQ(count, 2);
}

}  // namespace
}  // namespace lg::util
