#include "util/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

namespace lg::util {
namespace {

TEST(SchedulerTest, RunsEventsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.at(3.0, [&] { order.push_back(3); });
  sched.at(1.0, [&] { order.push_back(1); });
  sched.at(2.0, [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sched.now(), 3.0);
}

TEST(SchedulerTest, EqualTimestampsAreFifo) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.at(5.0, [&order, i] { order.push_back(i); });
  }
  sched.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SchedulerTest, AfterSchedulesRelative) {
  Scheduler sched;
  double fired_at = -1;
  sched.at(10.0, [&] {
    sched.after(5.0, [&] { fired_at = sched.now(); });
  });
  sched.run();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(SchedulerTest, PastTimesClampToNow) {
  Scheduler sched;
  double fired_at = -1;
  sched.at(10.0, [&] {
    sched.at(1.0, [&] { fired_at = sched.now(); });  // in the past
  });
  sched.run();
  EXPECT_DOUBLE_EQ(fired_at, 10.0);
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler sched;
  bool fired = false;
  const auto id = sched.at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sched.cancel(id));
  EXPECT_FALSE(sched.cancel(id));  // double-cancel is a no-op
  sched.run();
  EXPECT_FALSE(fired);
}

TEST(SchedulerTest, RunUntilStopsEarly) {
  Scheduler sched;
  int count = 0;
  sched.at(1.0, [&] { ++count; });
  sched.at(10.0, [&] { ++count; });
  sched.run(5.0);
  EXPECT_EQ(count, 1);
  EXPECT_DOUBLE_EQ(sched.now(), 5.0);  // clock advances to the bound
  sched.run();
  EXPECT_EQ(count, 2);
}

TEST(SchedulerTest, EventsScheduledDuringRunExecute) {
  Scheduler sched;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sched.after(1.0, recurse);
  };
  sched.after(1.0, recurse);
  sched.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(sched.now(), 5.0);
}

TEST(SchedulerTest, PendingAndExecutedCounters) {
  Scheduler sched;
  sched.at(1.0, [] {});
  sched.at(2.0, [] {});
  EXPECT_EQ(sched.pending(), 2u);
  EXPECT_FALSE(sched.empty());
  sched.run();
  EXPECT_EQ(sched.pending(), 0u);
  EXPECT_TRUE(sched.empty());
  EXPECT_EQ(sched.executed(), 2u);
}

TEST(SchedulerTest, StepExecutesExactlyOne) {
  Scheduler sched;
  int count = 0;
  sched.at(1.0, [&] { ++count; });
  sched.at(2.0, [&] { ++count; });
  EXPECT_TRUE(sched.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sched.step());
  EXPECT_FALSE(sched.step());
  EXPECT_EQ(count, 2);
}

TEST(SchedulerTest, StepBatchRunsAllEventsAtEarliestDeadline) {
  Scheduler sched;
  std::vector<int> order;
  sched.at(1.0, [&] { order.push_back(0); });
  sched.at(1.0, [&] {
    order.push_back(1);
    // Scheduled during the batch at the same instant: joins the batch.
    sched.at(1.0, [&] { order.push_back(3); });
  });
  sched.at(1.0, [&] { order.push_back(2); });
  sched.at(2.0, [&] { order.push_back(9); });
  EXPECT_EQ(sched.step_batch(), 4u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(sched.step_batch(), 1u);
  EXPECT_EQ(sched.step_batch(), 0u);
}

TEST(SchedulerTest, StepBatchHonorsBound) {
  Scheduler sched;
  int count = 0;
  sched.at(10.0, [&] { ++count; });
  EXPECT_EQ(sched.step_batch(5.0), 0u);
  EXPECT_EQ(count, 0);
}

// Regression: cancel churn must not grow the internal queue unboundedly.
// Tombstones are compacted once they outnumber live events, so the heap
// depth stays within a constant factor of the live count no matter how many
// schedule/cancel cycles run (fleet watchdogs re-arm one timer per probe
// round; before compaction this grew the heap by one tombstone per round).
TEST(SchedulerTest, CancelChurnKeepsQueueDepthBounded) {
  Scheduler sched;
  int fired = 0;
  // A handful of long-lived survivors to keep the heap non-trivial.
  for (int i = 0; i < 8; ++i) {
    sched.at(1e6 + i, [&] { ++fired; });
  }
  std::size_t high_water = 0;
  std::uint64_t watchdog = 0;
  for (int round = 0; round < 100000; ++round) {
    if (watchdog != 0) sched.cancel(watchdog);
    watchdog = sched.at(1e7 + round, [] { FAIL() << "cancelled watchdog fired"; });
    high_water = std::max(high_water, sched.queue_depth());
  }
  // 8 survivors + 1 live watchdog, plus at most max(64, live) + 1 tombstones
  // between compactions — far below the 100008 an uncompacted heap reaches.
  EXPECT_EQ(sched.pending(), 9u);
  EXPECT_LE(high_water, 128u);
  EXPECT_GE(sched.compactions(), 1u);
  sched.cancel(watchdog);
  sched.run();
  EXPECT_EQ(fired, 8);  // survivors unharmed by compaction
}

}  // namespace
}  // namespace lg::util
