// lg::adversary — the hostile-policy plane and its consumers:
//  * a disabled plane is inert (the "adversary off = byte-identical
//    benches" guarantee) and profiles are pure functions of
//    (seed, AS, role, prevalences);
//  * role eligibility: default routes and destabilizers on stubs only,
//    Peerlock on the tier-1 clique + large transit only;
//  * the speaker import filters at their edges: a path exactly at the
//    length limit passes, one hop over is rejected (and clears the slot);
//    the Peerlock drop matrix with its customer and clique exemptions;
//  * default-routed stubs: control plane repaired, data plane still
//    forwarding (the captive signature);
//  * destabilizer schedules are finite, alternating, and bounded by the
//    engine's route-flap damping;
//  * the differential oracle agrees with the engine with adversaries on,
//    for any LG_WORLD_THREADS value;
//  * LG_ADVERSARY* env parsing is strict (no silent fallbacks).
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "adversary/adversary_plane.h"
#include "adversary/destabilizer.h"
#include "bgp/engine.h"
#include "check/fuzzer.h"
#include "topology/addressing.h"
#include "topology/generator.h"
#include "util/scheduler.h"
#include "workload/destabilizer.h"
#include "workload/sim_world.h"

namespace lg {
namespace {

using adversary::AdversaryConfig;
using adversary::AdversaryPlane;
using adversary::Profile;
using adversary::Role;
using adversary::RoleTable;
using topo::AsId;

topo::GeneratedTopology small_topology(std::uint64_t seed = 7) {
  topo::TopologyParams tp;
  tp.num_tier1 = 3;
  tp.num_large_transit = 4;
  tp.num_small_transit = 6;
  tp.num_stubs = 20;
  tp.seed = seed;
  return topo::generate_topology(tp);
}

TEST(AdversaryPlane, DisabledPlaneIsInert) {
  AdversaryPlane plane;  // default config: disabled
  EXPECT_FALSE(plane.enabled());
  const Profile p = plane.profile_for(42, Role::kStub);
  EXPECT_FALSE(p.any());
  EXPECT_EQ(p.path_length_limit, 0u);
}

TEST(AdversaryPlane, CurrentDefaultsToDisabledAndScopes) {
  EXPECT_FALSE(AdversaryPlane::current().enabled());
  AdversaryPlane plane(AdversaryConfig::at_prevalence(1.0));
  {
    adversary::ScopedAdversaryPlane scope(plane);
    EXPECT_EQ(&AdversaryPlane::current(), &plane);
    EXPECT_TRUE(AdversaryPlane::current().enabled());
  }
  EXPECT_FALSE(AdversaryPlane::current().enabled());
}

TEST(AdversaryPlane, AtPrevalenceSetsEveryKnobAndClamps) {
  const auto cfg = AdversaryConfig::at_prevalence(0.3);
  EXPECT_TRUE(cfg.enabled);
  EXPECT_EQ(cfg.pathlen_prevalence, 0.3);
  EXPECT_EQ(cfg.default_route_prevalence, 0.3);
  EXPECT_EQ(cfg.peerlock_prevalence, 0.3);
  EXPECT_EQ(cfg.destabilizer_prevalence, 0.3);
  EXPECT_FALSE(AdversaryConfig::at_prevalence(0.0).enabled);
  EXPECT_EQ(AdversaryConfig::at_prevalence(7.0).pathlen_prevalence, 1.0);
}

TEST(AdversaryPlane, ProfilesArePureFunctionsOfSeedAndAs) {
  const auto cfg = AdversaryConfig::at_prevalence(0.5);
  AdversaryPlane a(cfg);
  AdversaryPlane b(cfg);
  bool any_assigned = false;
  for (AsId id = 1; id <= 200; ++id) {
    const Profile pa = a.profile_for(id, Role::kStub);
    const Profile pb = b.profile_for(id, Role::kStub);
    EXPECT_EQ(pa.path_length_limit, pb.path_length_limit);
    EXPECT_EQ(pa.default_route, pb.default_route);
    EXPECT_EQ(pa.peerlock, pb.peerlock);
    EXPECT_EQ(pa.destabilizer, pb.destabilizer);
    any_assigned = any_assigned || pa.any();
  }
  EXPECT_TRUE(any_assigned);

  // A different seed reshuffles the assignment.
  AdversaryConfig other = cfg;
  other.seed ^= 0xdeadbeefULL;
  AdversaryPlane c(other);
  std::size_t differing = 0;
  for (AsId id = 1; id <= 200; ++id) {
    if (a.profile_for(id, Role::kStub).default_route !=
        c.profile_for(id, Role::kStub).default_route) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0u);
}

TEST(AdversaryPlane, RoleEligibilityGatesBehaviors) {
  AdversaryPlane plane(AdversaryConfig::at_prevalence(1.0));
  for (AsId id = 1; id <= 50; ++id) {
    const Profile stub = plane.profile_for(id, Role::kStub);
    EXPECT_TRUE(stub.default_route);
    EXPECT_TRUE(stub.destabilizer);
    EXPECT_FALSE(stub.peerlock);
    EXPECT_GT(stub.path_length_limit, 0u);

    const Profile tier1 = plane.profile_for(id, Role::kTier1);
    EXPECT_TRUE(tier1.peerlock);
    EXPECT_FALSE(tier1.default_route);
    EXPECT_FALSE(tier1.destabilizer);

    const Profile large = plane.profile_for(id, Role::kLargeTransit);
    EXPECT_TRUE(large.peerlock);
    EXPECT_FALSE(large.default_route);

    const Profile small = plane.profile_for(id, Role::kSmallTransit);
    EXPECT_FALSE(small.peerlock);
    EXPECT_FALSE(small.default_route);
    EXPECT_FALSE(small.destabilizer);
  }
}

TEST(AdversaryPlane, PathLengthLimitsStayInConfiguredRange) {
  auto cfg = AdversaryConfig::at_prevalence(1.0);
  cfg.pathlen_min_limit = 4;
  cfg.pathlen_max_limit = 6;
  AdversaryPlane plane(cfg);
  for (AsId id = 1; id <= 100; ++id) {
    const Profile p = plane.profile_for(id, Role::kSmallTransit);
    EXPECT_GE(p.path_length_limit, 4u);
    EXPECT_LE(p.path_length_limit, 6u);
  }
}

TEST(AdversaryPlane, RoleTableMirrorsTopologyStructure) {
  const auto gt = small_topology();
  const RoleTable roles(gt.graph);
  for (const AsId id : gt.graph.as_ids()) {
    const Role r = roles.role(id);
    if (gt.graph.providers(id).empty()) {
      EXPECT_EQ(r, Role::kTier1) << "AS " << id;
    } else if (gt.graph.customers(id).empty()) {
      EXPECT_EQ(r, Role::kStub) << "AS " << id;
    } else {
      EXPECT_TRUE(r == Role::kLargeTransit || r == Role::kSmallTransit)
          << "AS " << id;
    }
  }
  // The locked set is exactly the provider-free clique, sorted.
  const auto locked = adversary::locked_ases(gt.graph);
  EXPECT_TRUE(std::is_sorted(locked.begin(), locked.end()));
  for (const AsId id : gt.graph.as_ids()) {
    const bool is_locked =
        std::binary_search(locked.begin(), locked.end(), id);
    EXPECT_EQ(is_locked, gt.graph.providers(id).empty()) << "AS " << id;
  }
}

TEST(AdversaryPlane, EngineAppliesProfilesWhenScoped) {
  const auto gt = small_topology();
  AdversaryPlane plane(AdversaryConfig::at_prevalence(1.0));
  adversary::ScopedAdversaryPlane scope(plane);
  util::Scheduler sched;
  bgp::BgpEngine engine(gt.graph, sched);
  const RoleTable roles(gt.graph);
  for (const AsId id : gt.graph.as_ids()) {
    const Profile p = plane.profile_for(id, roles.role(id));
    const bgp::SpeakerConfig& cfg = engine.speaker(id).config();
    EXPECT_EQ(cfg.path_length_limit, p.path_length_limit) << "AS " << id;
    EXPECT_EQ(cfg.has_default_route, p.default_route) << "AS " << id;
    EXPECT_EQ(cfg.peerlock_filter, p.peerlock) << "AS " << id;
  }
}

TEST(AdversaryPlane, DisabledPlaneLeavesEngineConfigsAlone) {
  const auto gt = small_topology();
  util::Scheduler sched;
  bgp::BgpEngine engine(gt.graph, sched);  // no plane scoped
  for (const AsId id : gt.graph.as_ids()) {
    const bgp::SpeakerConfig& cfg = engine.speaker(id).config();
    EXPECT_EQ(cfg.path_length_limit, 0u);
    EXPECT_FALSE(cfg.peerlock_filter);
    EXPECT_FALSE(cfg.has_default_route);
  }
  EXPECT_EQ(engine.pathlen_rejections(), 0u);
  EXPECT_EQ(engine.peerlock_rejections(), 0u);
}

// ---- Speaker import filters -------------------------------------------

// Chain S -> F (F provides transit to S). S originates with a crafted path
// of chosen length; F's import filter judges exactly that path.
struct FilterRig {
  topo::AsGraph graph;
  util::Scheduler sched;
  AsId s = 1, f = 2;

  FilterRig() {
    graph.add_as(s);
    graph.add_as(f);
    graph.add_link(s, f, topo::Rel::kProvider);  // F provides transit to S
  }
};

TEST(PathLengthFilter, ThresholdEdgeAcceptsAtLimitRejectsOver) {
  FilterRig rig;
  bgp::BgpEngine engine(rig.graph, rig.sched);
  engine.speaker(rig.f).mutable_config().path_length_limit = 3;
  const topo::Prefix prefix = topo::AddressPlan::production_prefix(rig.s);

  bgp::OriginPolicy at_limit;
  at_limit.default_path = bgp::PathRef(bgp::baseline_path(rig.s, 3));
  engine.originate(rig.s, prefix, at_limit);
  rig.sched.run();
  ASSERT_NE(engine.best_route(rig.f, prefix), nullptr);
  EXPECT_EQ(engine.pathlen_rejections(), 0u);

  // One hop over the limit: rejected, and the rejection acts as an implicit
  // withdrawal of the previously accepted route.
  bgp::OriginPolicy over_limit;
  over_limit.default_path = bgp::PathRef(bgp::baseline_path(rig.s, 4));
  engine.originate(rig.s, prefix, over_limit);
  rig.sched.run();
  EXPECT_EQ(engine.best_route(rig.f, prefix), nullptr);
  EXPECT_EQ(engine.pathlen_rejections(), 1u);
}

TEST(PathLengthFilter, ZeroLimitMeansNoFilter) {
  FilterRig rig;
  bgp::BgpEngine engine(rig.graph, rig.sched);
  const topo::Prefix prefix = topo::AddressPlan::production_prefix(rig.s);
  bgp::OriginPolicy longpath;
  longpath.default_path = bgp::PathRef(bgp::baseline_path(rig.s, 12));
  engine.originate(rig.s, prefix, longpath);
  rig.sched.run();
  EXPECT_NE(engine.best_route(rig.f, prefix), nullptr);
  EXPECT_EQ(engine.pathlen_rejections(), 0u);
}

// Peerlock drop matrix. Topology gives the hops their relationships:
//  * L is provider-free (locked), with customer C;
//  * Q is provider-free (locked, "clique");
//  * P is a transit with provider Q, peering with L;
//  * X is a transit with provider Q, no relationship with L at all.
// S originates crafted paths through F (F provides transit to S; F has a
// provider so F itself is not locked).
struct PeerlockRig {
  topo::AsGraph graph;
  util::Scheduler sched;
  AsId s = 1, f = 2, l = 3, c = 4, p = 5, q = 6, x = 7;

  PeerlockRig() {
    for (const AsId id : {s, f, l, c, p, q, x}) graph.add_as(id);
    graph.add_link(s, f, topo::Rel::kProvider);  // F provides transit to S
    graph.add_link(f, q, topo::Rel::kProvider);  // F not provider-free
    graph.add_link(c, l, topo::Rel::kProvider);  // C is L's customer
    graph.add_link(p, q, topo::Rel::kProvider);
    graph.add_link(x, q, topo::Rel::kProvider);
    graph.add_link(p, l, topo::Rel::kPeer);
  }

  // Announce `path` from S and return F's resulting route (may be null).
  const bgp::Route* announce(bgp::BgpEngine& engine,
                             const bgp::AsPath& path) {
    const topo::Prefix prefix = topo::AddressPlan::production_prefix(s);
    bgp::OriginPolicy policy;
    policy.default_path = bgp::PathRef(path);
    engine.originate(s, prefix, policy);
    sched.run();
    return engine.best_route(f, prefix);
  }
};

TEST(PeerlockFilter, DropsLockedAsBehindPeer) {
  PeerlockRig rig;
  bgp::BgpEngine engine(rig.graph, rig.sched);
  engine.speaker(rig.f).mutable_config().peerlock_filter = true;
  // L appears behind its peer P: a leak, dropped.
  EXPECT_EQ(rig.announce(engine, bgp::AsPath{rig.s, rig.p, rig.l}), nullptr);
  EXPECT_EQ(engine.peerlock_rejections(), 1u);
}

TEST(PeerlockFilter, DropsLockedAsBehindStranger) {
  PeerlockRig rig;
  bgp::BgpEngine engine(rig.graph, rig.sched);
  engine.speaker(rig.f).mutable_config().peerlock_filter = true;
  // X has no relationship with L — certainly not its customer: dropped.
  EXPECT_EQ(rig.announce(engine, bgp::AsPath{rig.s, rig.x, rig.l}), nullptr);
  EXPECT_EQ(engine.peerlock_rejections(), 1u);
}

TEST(PeerlockFilter, CustomerExemptionAccepts) {
  PeerlockRig rig;
  bgp::BgpEngine engine(rig.graph, rig.sched);
  engine.speaker(rig.f).mutable_config().peerlock_filter = true;
  // L behind its own customer C is the legitimate export direction.
  EXPECT_NE(rig.announce(engine, bgp::AsPath{rig.s, rig.c, rig.l}), nullptr);
  EXPECT_EQ(engine.peerlock_rejections(), 0u);
}

TEST(PeerlockFilter, CliqueExemptionAccepts) {
  PeerlockRig rig;
  bgp::BgpEngine engine(rig.graph, rig.sched);
  engine.speaker(rig.f).mutable_config().peerlock_filter = true;
  // Through Q's customer P up to Q, then L behind fellow clique member Q:
  // the customer exemption covers P->Q and the clique exemption Q->L.
  EXPECT_NE(rig.announce(engine, bgp::AsPath{rig.s, rig.p, rig.q, rig.l}),
            nullptr);
  EXPECT_EQ(engine.peerlock_rejections(), 0u);
}

TEST(PeerlockFilter, FilterOffAcceptsTheLeak) {
  PeerlockRig rig;
  bgp::BgpEngine engine(rig.graph, rig.sched);
  EXPECT_NE(rig.announce(engine, bgp::AsPath{rig.s, rig.p, rig.l}), nullptr);
  EXPECT_EQ(engine.peerlock_rejections(), 0u);
}

// ---- Default-routed stubs: the captive signature ----------------------

TEST(DefaultRoute, ControlPlaneRepairedDataPlaneStillForwards) {
  // O -> V -> S: V provides transit to both; S is a default-routed stub.
  topo::AsGraph graph;
  const AsId o = 1, v = 2, s = 3;
  for (const AsId id : {o, v, s}) graph.add_as(id);
  graph.add_link(o, v, topo::Rel::kProvider);
  graph.add_link(s, v, topo::Rel::kProvider);
  util::Scheduler sched;
  bgp::BgpEngine engine(graph, sched);
  engine.speaker(s).mutable_config().has_default_route = true;

  const topo::Prefix prefix = topo::AddressPlan::production_prefix(o);
  bgp::OriginPolicy policy;
  policy.default_path = bgp::PathRef(bgp::AsPath{o});
  engine.originate(o, prefix, policy);
  sched.run();
  ASSERT_NE(engine.best_route(s, prefix), nullptr);

  // Withdrawal (what a poison does to a filtered AS): the RIB empties — the
  // control plane looks repaired — but the FIB still forwards via the
  // default toward the provider. That gap is what captive detection audits.
  engine.withdraw(o, prefix);
  sched.run();
  EXPECT_EQ(engine.best_route(s, prefix), nullptr);
  const bgp::FibResult fib = engine.speaker(s).fib_lookup(prefix.addr());
  EXPECT_TRUE(fib.via_default);
  EXPECT_EQ(engine.speaker(s).default_gateway(), std::optional<AsId>(v));
}

// ---- Destabilizer ------------------------------------------------------

TEST(Destabilizer, ScheduleIsFiniteAlternatingAndDeterministic) {
  adversary::DestabilizerConfig cfg;
  cfg.max_cycles = 5;
  cfg.prepend_variants = 3;
  const auto a = adversary::destabilizer_schedule(123, 77, cfg);
  const auto b = adversary::destabilizer_schedule(123, 77, cfg);
  ASSERT_EQ(a.size(), 2 * cfg.max_cycles);
  ASSERT_EQ(a.size(), b.size());
  double last = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].prepends, b[i].prepends);
    EXPECT_GT(a[i].at, last);
    last = a[i].at;
    const auto want = i % 2 == 0 ? adversary::StepKind::kAnnounce
                                 : adversary::StepKind::kWithdraw;
    EXPECT_EQ(a[i].kind, want);
    EXPECT_LT(a[i].prepends, cfg.prepend_variants);
  }
  // Different AS, different timing.
  const auto other = adversary::destabilizer_schedule(123, 78, cfg);
  EXPECT_NE(a.front().at, other.front().at);
}

TEST(Destabilizer, WorkloadQuiescesAndDampingBoundsChurn) {
  const auto run_world = [](bool damping) {
    AdversaryConfig cfg;
    cfg.enabled = true;
    cfg.destabilizer_prevalence = 1.0;
    AdversaryPlane plane(cfg);
    adversary::ScopedAdversaryPlane scope(plane);
    obs::MetricsRegistry reg;
    obs::ScopedMetricsRegistry scoped_reg(reg);
    workload::SimWorld world(workload::SimWorld::small_config(11));
    if (damping) {
      for (const AsId id : world.graph().as_ids()) {
        world.engine().speaker(id).mutable_config().damping_enabled = true;
      }
    }
    workload::DestabilizerWorkloadConfig dcfg;
    dcfg.max_destabilizers = 4;
    workload::DestabilizerWorkload destab(world, dcfg);
    destab.start({});
    EXPECT_EQ(destab.destabilizer_ases().size(), 4u);
    world.advance(5000.0);
    EXPECT_GT(destab.steps_played(), 0u);
    // Finite playbook: every trial still quiesces.
    EXPECT_LE(destab.steps_played(),
              2 * dcfg.schedule.max_cycles * dcfg.max_destabilizers);
    return world.engine().total_messages();
  };
  const std::uint64_t undamped = run_world(false);
  const std::uint64_t damped = run_world(true);
  // Damping suppresses the flapping sessions, so the same playbook moves
  // strictly fewer updates — the backstop that bounds a destabilizer.
  EXPECT_LT(damped, undamped);
}

// ---- Differential oracle with adversaries on ---------------------------

TEST(AdversaryDifferential, SweepAgreesWithReference) {
  const auto summary =
      check::run_sweep(910000, 12, /*fault_intensity=*/0.0,
                       /*log_failures=*/true, /*world_threads=*/0,
                       /*adversary_prevalence=*/0.5);
  EXPECT_TRUE(summary.ok()) << summary.failing_seeds.size()
                            << " failing seeds";
}

TEST(AdversaryDifferential, FullPrevalenceSweepAgrees) {
  const auto summary =
      check::run_sweep(920000, 8, 0.0, true, 0, 1.0);
  EXPECT_TRUE(summary.ok());
}

TEST(AdversaryDifferential, AgreesForAnyWorldThreadCount) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const auto summary = check::run_sweep(930000, 6, 0.0, true, threads, 0.7);
    EXPECT_TRUE(summary.ok()) << "world_threads=" << threads;
  }
}

TEST(AdversaryDifferential, ReplaysSeedFromEnvironment) {
  const auto seed = check::replay_seed_from_env();
  if (!seed.has_value()) {
    GTEST_SKIP() << "LG_CHECK_SEED not set";
  }
  check::ScenarioOptions opt;
  opt.seed = *seed;
  opt.adversary_prevalence = 0.5;
  const auto result = check::run_scenario(opt);
  EXPECT_TRUE(result.ok()) << result.summary();
}

// ---- Strict env parsing ------------------------------------------------

class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* prior = std::getenv(name);
    if (prior != nullptr) prior_ = prior;
    ::setenv(name, value, 1);
  }
  ~EnvGuard() {
    if (prior_.has_value()) {
      ::setenv(name_, prior_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> prior_;
};

TEST(AdversaryEnv, FromEnvHonorsPrevalenceKnobs) {
  EnvGuard on("LG_ADVERSARY", "0.25");
  EnvGuard pathlen("LG_ADVERSARY_PATHLEN", "0.75");
  const auto cfg = AdversaryConfig::from_env();
  EXPECT_TRUE(cfg.enabled);
  EXPECT_EQ(cfg.pathlen_prevalence, 0.75);  // override wins
  EXPECT_EQ(cfg.default_route_prevalence, 0.25);
}

TEST(AdversaryEnv, OffDisables) {
  EnvGuard on("LG_ADVERSARY", "off");
  EXPECT_FALSE(AdversaryConfig::from_env().enabled);
}

TEST(AdversaryEnv, SingleBehaviorKnobEnables) {
  EnvGuard knob("LG_ADVERSARY_PEERLOCK", "1.0");
  const auto cfg = AdversaryConfig::from_env();
  EXPECT_TRUE(cfg.enabled);
  EXPECT_EQ(cfg.peerlock_prevalence, 1.0);
  EXPECT_EQ(cfg.pathlen_prevalence, 0.0);
}

TEST(AdversaryEnv, MalformedValuesThrow) {
  {
    EnvGuard bad("LG_ADVERSARY_PATHLEN", "lots");
    EXPECT_THROW(AdversaryConfig::from_env(), std::invalid_argument);
  }
  {
    EnvGuard range("LG_ADVERSARY_DEFAULT_ROUTE", "1.5");
    EXPECT_THROW(AdversaryConfig::from_env(), std::invalid_argument);
  }
  {
    EnvGuard seed("LG_ADVERSARY_SEED", "0x12");
    EXPECT_THROW(AdversaryConfig::from_env(), std::invalid_argument);
  }
  {
    EnvGuard limit("LG_ADVERSARY_PATHLEN_LIMIT", "0");
    EXPECT_THROW(AdversaryConfig::from_env(), std::invalid_argument);
  }
}

}  // namespace
}  // namespace lg
