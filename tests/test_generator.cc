#include "topology/generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "topology/io.h"

namespace lg::topo {
namespace {

TEST(GeneratorTest, ProducesRequestedCounts) {
  const TopologyParams params{.num_tier1 = 5,
                              .num_large_transit = 10,
                              .num_small_transit = 20,
                              .num_stubs = 40,
                              .seed = 1};
  const auto topo = generate_topology(params);
  EXPECT_EQ(topo.tier1.size(), 5u);
  EXPECT_EQ(topo.large_transit.size(), 10u);
  EXPECT_EQ(topo.small_transit.size(), 20u);
  EXPECT_EQ(topo.stubs.size(), 40u);
  EXPECT_EQ(topo.graph.num_ases(), 75u);
}

TEST(GeneratorTest, ValidatesCleanly) {
  const auto topo = generate_topology({.seed = 2});
  EXPECT_FALSE(topo.graph.validate().has_value());
}

TEST(GeneratorTest, Tier1FormsFullPeerClique) {
  const auto topo = generate_topology({.num_tier1 = 6, .seed = 3});
  for (std::size_t i = 0; i < topo.tier1.size(); ++i) {
    for (std::size_t j = i + 1; j < topo.tier1.size(); ++j) {
      EXPECT_EQ(topo.graph.relationship(topo.tier1[i], topo.tier1[j]),
                Rel::kPeer);
    }
  }
}

TEST(GeneratorTest, StubsHaveOnlyProviders) {
  const auto topo = generate_topology({.seed = 4});
  for (const AsId stub : topo.stubs) {
    EXPECT_TRUE(topo.graph.customers(stub).empty());
    const auto providers = topo.graph.providers(stub);
    EXPECT_GE(providers.size(), 1u);
    EXPECT_LE(providers.size(), 3u);
  }
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  const auto a = generate_topology({.seed = 77});
  const auto b = generate_topology({.seed = 77});
  EXPECT_EQ(a.graph.links(), b.graph.links());
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  const auto a = generate_topology({.seed = 1});
  const auto b = generate_topology({.seed = 2});
  EXPECT_NE(a.graph.links(), b.graph.links());
}

TEST(GeneratorTest, DegreeDistributionIsHeavyTailed) {
  const auto topo = generate_topology({.seed = 9});
  std::vector<std::size_t> degrees;
  for (const AsId as : topo.graph.as_ids()) {
    degrees.push_back(topo.graph.degree(as));
  }
  std::sort(degrees.rbegin(), degrees.rend());
  // Preferential attachment: the max degree should be far above the median.
  const auto median = degrees[degrees.size() / 2];
  EXPECT_GT(degrees.front(), median * 5);
}

TEST(GeneratorTest, RejectsDegenerateParams) {
  EXPECT_THROW(generate_topology({.num_tier1 = 1}), std::invalid_argument);
}

TEST(InternetScaleTest, ProducesValidGraphAtModestScale) {
  const auto topo = generate_internet_scale({.total_ases = 2000, .seed = 5});
  EXPECT_EQ(topo.graph.num_ases(), 2000u);
  EXPECT_FALSE(topo.graph.validate().has_value());
  EXPECT_EQ(topo.tier1.size(), 12u);
  EXPECT_FALSE(topo.large_transit.empty());
  EXPECT_FALSE(topo.small_transit.empty());
  EXPECT_FALSE(topo.stubs.empty());
  EXPECT_EQ(topo.tier1.size() + topo.large_transit.size() +
                topo.small_transit.size() + topo.stubs.size(),
            2000u);
}

TEST(InternetScaleTest, DeterministicPerSeed) {
  const auto a = generate_internet_scale({.total_ases = 1000, .seed = 7});
  const auto b = generate_internet_scale({.total_ases = 1000, .seed = 7});
  const auto c = generate_internet_scale({.total_ases = 1000, .seed = 8});
  EXPECT_EQ(a.graph.links(), b.graph.links());
  EXPECT_NE(a.graph.links(), c.graph.links());
}

TEST(InternetScaleTest, DegreeStatsMatchInternetShape) {
  const auto topo = generate_internet_scale({.total_ases = 5000, .seed = 11});
  std::vector<std::size_t> degrees;
  std::size_t total_degree = 0;
  for (const AsId as : topo.graph.as_ids()) {
    degrees.push_back(topo.graph.degree(as));
    total_degree += degrees.back();
  }
  const double avg =
      static_cast<double>(total_degree) / static_cast<double>(degrees.size());
  // Real AS graph: average degree ~4-6, heavy tail at the top.
  EXPECT_GT(avg, 2.0);
  EXPECT_LT(avg, 10.0);
  std::sort(degrees.rbegin(), degrees.rend());
  EXPECT_GT(degrees.front(), degrees[degrees.size() / 2] * 20);
}

TEST(InternetScaleTest, RejectsDegenerateParams) {
  EXPECT_THROW(generate_internet_scale({.total_ases = 10, .num_tier1 = 12}),
               std::invalid_argument);
}

TEST(ClassifyTopologyTest, WrapsLoadedGraphWithRoles) {
  const auto generated = generate_internet_scale({.total_ases = 800, .seed = 3});
  auto reloaded = classify_topology(from_caida(to_caida(generated.graph)));
  EXPECT_EQ(reloaded.graph.num_ases(), generated.graph.num_ases());
  EXPECT_EQ(reloaded.tier1.size(), generated.tier1.size());
  // Role partition covers the graph; large transit = top decile by degree.
  EXPECT_EQ(reloaded.tier1.size() + reloaded.large_transit.size() +
                reloaded.small_transit.size() + reloaded.stubs.size(),
            reloaded.graph.num_ases());
  for (const AsId as : reloaded.large_transit) {
    EXPECT_EQ(reloaded.graph.tier(as), AsTier::kTransit);
  }
  for (const AsId as : reloaded.stubs) {
    EXPECT_TRUE(reloaded.graph.customers(as).empty());
  }
}

// RAII env guard so failures can't leak topology overrides into later tests.
class EnvGuard {
 public:
  EnvGuard(const char* key, const std::string& value) : key_(key) {
    ::setenv(key, value.c_str(), 1);
  }
  ~EnvGuard() { ::unsetenv(key_); }

 private:
  const char* key_;
};

TEST(TopologyFromEnvTest, DefaultsToFallbackParams) {
  const TopologyParams fallback{.num_tier1 = 4,
                                .num_large_transit = 8,
                                .num_small_transit = 16,
                                .num_stubs = 40,
                                .seed = 21};
  const auto topo = topology_from_env(fallback);
  EXPECT_EQ(topo.graph.links(), generate_topology(fallback).graph.links());
}

TEST(TopologyFromEnvTest, ScaleOverrideGeneratesInternetScale) {
  const EnvGuard guard("LG_TOPOLOGY_SCALE", "500");
  const TopologyParams fallback{.seed = 33};
  const auto topo = topology_from_env(fallback);
  EXPECT_EQ(topo.graph.num_ases(), 500u);
  // The fallback's seed carries over so trials stay reproducible.
  InternetScaleParams params;
  params.total_ases = 500;
  params.seed = 33;
  EXPECT_EQ(topo.graph.links(), generate_internet_scale(params).graph.links());
}

TEST(TopologyFromEnvTest, FileOverrideWinsOverScale) {
  const auto source = generate_topology({.num_tier1 = 3,
                                         .num_large_transit = 6,
                                         .num_small_transit = 12,
                                         .num_stubs = 30,
                                         .seed = 13});
  const std::string path = ::testing::TempDir() + "/lg_topo_env_test.txt";
  save_caida_file(source.graph, path);
  const EnvGuard file_guard("LG_TOPOLOGY_FILE", path);
  const EnvGuard scale_guard("LG_TOPOLOGY_SCALE", "500");
  const auto topo = topology_from_env({});
  EXPECT_EQ(topo.graph.links(), source.graph.links());
  std::remove(path.c_str());
}

TEST(TopologyFromEnvTest, BadScaleValueThrows) {
  const EnvGuard guard("LG_TOPOLOGY_SCALE", "bogus");
  EXPECT_THROW(topology_from_env({}), std::invalid_argument);
  const EnvGuard small("LG_TOPOLOGY_SCALE", "3");
  EXPECT_THROW(topology_from_env({}), std::invalid_argument);
}

TEST(Fig2TopologyTest, MatchesPaperStructure) {
  const auto t = make_fig2_topology();
  EXPECT_EQ(t.graph.relationship(t.o, t.b), Rel::kProvider);
  EXPECT_EQ(t.graph.relationship(t.b, t.a), Rel::kProvider);
  EXPECT_EQ(t.graph.relationship(t.a, t.c), Rel::kPeer);
  // F is captive: single provider A.
  EXPECT_EQ(t.graph.providers(t.f), std::vector<AsId>{t.a});
  // E is multihomed to A and D.
  const auto e_prov = t.graph.providers(t.e);
  EXPECT_EQ(e_prov.size(), 2u);
  EXPECT_FALSE(t.graph.validate().has_value());
}

TEST(Fig3TopologyTest, DisjointChainsToA) {
  const auto t = make_fig3_topology();
  // O multihomed to D1 and D2.
  const auto o_prov = t.graph.providers(t.o);
  EXPECT_EQ(o_prov.size(), 2u);
  // The two chains D1-B1-A and D2-B2-A share only A.
  EXPECT_TRUE(t.graph.has_link(t.d1, t.b1));
  EXPECT_TRUE(t.graph.has_link(t.d2, t.b2));
  EXPECT_TRUE(t.graph.has_link(t.b1, t.a));
  EXPECT_TRUE(t.graph.has_link(t.b2, t.a));
  EXPECT_FALSE(t.graph.has_link(t.d1, t.b2));
  EXPECT_FALSE(t.graph.has_link(t.b1, t.b2));
  // B2 numerically lower so A's tie-break initially picks the B2 chain.
  EXPECT_LT(t.b2, t.b1);
  EXPECT_FALSE(t.graph.validate().has_value());
}

}  // namespace
}  // namespace lg::topo
