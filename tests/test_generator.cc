#include "topology/generator.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace lg::topo {
namespace {

TEST(GeneratorTest, ProducesRequestedCounts) {
  const TopologyParams params{.num_tier1 = 5,
                              .num_large_transit = 10,
                              .num_small_transit = 20,
                              .num_stubs = 40,
                              .seed = 1};
  const auto topo = generate_topology(params);
  EXPECT_EQ(topo.tier1.size(), 5u);
  EXPECT_EQ(topo.large_transit.size(), 10u);
  EXPECT_EQ(topo.small_transit.size(), 20u);
  EXPECT_EQ(topo.stubs.size(), 40u);
  EXPECT_EQ(topo.graph.num_ases(), 75u);
}

TEST(GeneratorTest, ValidatesCleanly) {
  const auto topo = generate_topology({.seed = 2});
  EXPECT_FALSE(topo.graph.validate().has_value());
}

TEST(GeneratorTest, Tier1FormsFullPeerClique) {
  const auto topo = generate_topology({.num_tier1 = 6, .seed = 3});
  for (std::size_t i = 0; i < topo.tier1.size(); ++i) {
    for (std::size_t j = i + 1; j < topo.tier1.size(); ++j) {
      EXPECT_EQ(topo.graph.relationship(topo.tier1[i], topo.tier1[j]),
                Rel::kPeer);
    }
  }
}

TEST(GeneratorTest, StubsHaveOnlyProviders) {
  const auto topo = generate_topology({.seed = 4});
  for (const AsId stub : topo.stubs) {
    EXPECT_TRUE(topo.graph.customers(stub).empty());
    const auto providers = topo.graph.providers(stub);
    EXPECT_GE(providers.size(), 1u);
    EXPECT_LE(providers.size(), 3u);
  }
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  const auto a = generate_topology({.seed = 77});
  const auto b = generate_topology({.seed = 77});
  EXPECT_EQ(a.graph.links(), b.graph.links());
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  const auto a = generate_topology({.seed = 1});
  const auto b = generate_topology({.seed = 2});
  EXPECT_NE(a.graph.links(), b.graph.links());
}

TEST(GeneratorTest, DegreeDistributionIsHeavyTailed) {
  const auto topo = generate_topology({.seed = 9});
  std::vector<std::size_t> degrees;
  for (const AsId as : topo.graph.as_ids()) {
    degrees.push_back(topo.graph.degree(as));
  }
  std::sort(degrees.rbegin(), degrees.rend());
  // Preferential attachment: the max degree should be far above the median.
  const auto median = degrees[degrees.size() / 2];
  EXPECT_GT(degrees.front(), median * 5);
}

TEST(GeneratorTest, RejectsDegenerateParams) {
  EXPECT_THROW(generate_topology({.num_tier1 = 1}), std::invalid_argument);
}

TEST(Fig2TopologyTest, MatchesPaperStructure) {
  const auto t = make_fig2_topology();
  EXPECT_EQ(t.graph.relationship(t.o, t.b), Rel::kProvider);
  EXPECT_EQ(t.graph.relationship(t.b, t.a), Rel::kProvider);
  EXPECT_EQ(t.graph.relationship(t.a, t.c), Rel::kPeer);
  // F is captive: single provider A.
  EXPECT_EQ(t.graph.providers(t.f), std::vector<AsId>{t.a});
  // E is multihomed to A and D.
  const auto e_prov = t.graph.providers(t.e);
  EXPECT_EQ(e_prov.size(), 2u);
  EXPECT_FALSE(t.graph.validate().has_value());
}

TEST(Fig3TopologyTest, DisjointChainsToA) {
  const auto t = make_fig3_topology();
  // O multihomed to D1 and D2.
  const auto o_prov = t.graph.providers(t.o);
  EXPECT_EQ(o_prov.size(), 2u);
  // The two chains D1-B1-A and D2-B2-A share only A.
  EXPECT_TRUE(t.graph.has_link(t.d1, t.b1));
  EXPECT_TRUE(t.graph.has_link(t.d2, t.b2));
  EXPECT_TRUE(t.graph.has_link(t.b1, t.a));
  EXPECT_TRUE(t.graph.has_link(t.b2, t.a));
  EXPECT_FALSE(t.graph.has_link(t.d1, t.b2));
  EXPECT_FALSE(t.graph.has_link(t.b1, t.b2));
  // B2 numerically lower so A's tie-break initially picks the B2 chain.
  EXPECT_LT(t.b2, t.b1);
  EXPECT_FALSE(t.graph.validate().has_value());
}

}  // namespace
}  // namespace lg::topo
