#include "bgp/types.h"

#include <gtest/gtest.h>

namespace lg::bgp {
namespace {

TEST(AsPathTest, PathStrAndCounting) {
  const AsPath p{10, 20, 10};
  EXPECT_EQ(path_str(p), "10-20-10");
  EXPECT_EQ(path_str(AsPath{}), "(empty)");
  EXPECT_EQ(count_occurrences(p, 10), 2u);
  EXPECT_EQ(count_occurrences(p, 20), 1u);
  EXPECT_EQ(count_occurrences(p, 30), 0u);
}

TEST(AsPathTest, ContainsAny) {
  const AsPath p{1, 2, 3};
  EXPECT_TRUE(path_contains_any(p, {9, 2}));
  EXPECT_FALSE(path_contains_any(p, {9, 8}));
  EXPECT_FALSE(path_contains_any(p, {}));
}

TEST(LocalPrefTest, GaoRexfordOrdering) {
  EXPECT_GT(local_pref(LearnedFrom::kLocal), local_pref(LearnedFrom::kCustomer));
  EXPECT_GT(local_pref(LearnedFrom::kCustomer), local_pref(LearnedFrom::kPeer));
  EXPECT_GT(local_pref(LearnedFrom::kPeer), local_pref(LearnedFrom::kProvider));
}

TEST(BetterRouteTest, LocalPrefDominatesPathLength) {
  Route customer_long{Prefix(0x0A000000, 24), {1, 2, 3, 4}, 1,
                      LearnedFrom::kCustomer};
  Route provider_short{Prefix(0x0A000000, 24), {5}, 5, LearnedFrom::kProvider};
  EXPECT_TRUE(better_route(customer_long, provider_short));
  EXPECT_FALSE(better_route(provider_short, customer_long));
}

TEST(BetterRouteTest, ShorterPathWinsWithinSamePref) {
  Route a{Prefix(0x0A000000, 24), {1, 9}, 1, LearnedFrom::kPeer};
  Route b{Prefix(0x0A000000, 24), {2, 8, 9}, 2, LearnedFrom::kPeer};
  EXPECT_TRUE(better_route(a, b));
}

TEST(BetterRouteTest, LowestNeighborBreaksTies) {
  Route a{Prefix(0x0A000000, 24), {3, 9}, 3, LearnedFrom::kPeer};
  Route b{Prefix(0x0A000000, 24), {7, 9}, 7, LearnedFrom::kPeer};
  EXPECT_TRUE(better_route(a, b));
  EXPECT_FALSE(better_route(b, a));
}

TEST(BaselinePathTest, PrependedBaseline) {
  EXPECT_EQ(baseline_path(10, 3), (AsPath{10, 10, 10}));
  EXPECT_EQ(baseline_path(10, 1), (AsPath{10}));
  EXPECT_THROW(baseline_path(10, 0), std::invalid_argument);
}

TEST(PoisonedPathTest, PaperShape) {
  // O-A-O: the poisoned AS in the middle, the true origin at the end.
  EXPECT_EQ(poisoned_path(10, {20}, 3), (AsPath{10, 20, 10}));
  // Same length as the O-O-O baseline it replaces.
  EXPECT_EQ(poisoned_path(10, {20}, 3).size(), baseline_path(10, 3).size());
}

TEST(PoisonedPathTest, DoublePoisonForLenientLoopDetection) {
  // §7.1: AS286-style networks need their ASN twice.
  EXPECT_EQ(poisoned_path(10, {20, 20}, 4), (AsPath{10, 20, 20, 10}));
}

TEST(PoisonedPathTest, PadsWithLeadingOrigin) {
  EXPECT_EQ(poisoned_path(10, {20}, 5), (AsPath{10, 10, 10, 20, 10}));
}

TEST(PoisonedPathTest, RejectsTooShortTotal) {
  EXPECT_THROW(poisoned_path(10, {20, 30}, 3), std::invalid_argument);
}

TEST(OriginPolicyTest, PerNeighborOverrides) {
  OriginPolicy policy;
  policy.default_path = AsPath{10, 10, 10};
  policy.per_neighbor[5] = AsPath{10, 99, 10};
  policy.per_neighbor[6] = std::nullopt;  // withhold

  EXPECT_EQ(policy.path_for(1), (AsPath{10, 10, 10}));
  EXPECT_EQ(policy.path_for(5), (AsPath{10, 99, 10}));
  EXPECT_FALSE(policy.path_for(6).has_value());
}

TEST(UpdateMessageTest, Rendering) {
  UpdateMessage msg;
  msg.type = MsgType::kAnnounce;
  msg.from = 1;
  msg.to = 2;
  msg.prefix = Prefix(0x0A000000, 24);
  msg.path = {1, 9};
  EXPECT_NE(msg.str().find("ANNOUNCE"), std::string::npos);
  EXPECT_NE(msg.str().find("1-9"), std::string::npos);
  msg.type = MsgType::kWithdraw;
  EXPECT_NE(msg.str().find("WITHDRAW"), std::string::npos);
}

}  // namespace
}  // namespace lg::bgp
