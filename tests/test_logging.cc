// util::Logger — sink capture, simulated-time prefixes, and the kOff fast
// path. The logger is a process-wide singleton, so every test restores the
// default level/sink/time-provider on exit.
#include "util/logging.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace lg::util {
namespace {

struct LoggerGuard {
  LoggerGuard() = default;
  ~LoggerGuard() {
    auto& log = Logger::instance();
    log.set_level(LogLevel::kWarn);
    log.set_sink({});
    log.set_time_provider(nullptr);
  }
};

struct CapturedLine {
  LogLevel level;
  std::string text;
};

std::vector<CapturedLine>* capture(Logger& log) {
  static std::vector<CapturedLine> lines;
  lines.clear();
  log.set_sink([](LogLevel level, const std::string& text) {
    lines.push_back({level, text});
  });
  return &lines;
}

TEST(Logging, SinkCapturesFormattedLines) {
  LoggerGuard guard;
  auto& log = Logger::instance();
  log.set_level(LogLevel::kInfo);
  auto* lines = capture(log);

  LG_INFO << "hello " << 42;
  LG_ERROR << "boom";

  ASSERT_EQ(lines->size(), 2u);
  EXPECT_EQ((*lines)[0].level, LogLevel::kInfo);
  EXPECT_EQ((*lines)[0].text, "INFO  hello 42");
  EXPECT_EQ((*lines)[1].level, LogLevel::kError);
  EXPECT_EQ((*lines)[1].text, "ERROR boom");
}

TEST(Logging, LevelFiltersLowerSeverities) {
  LoggerGuard guard;
  auto& log = Logger::instance();
  log.set_level(LogLevel::kWarn);
  auto* lines = capture(log);

  LG_DEBUG << "not seen";
  LG_INFO << "not seen either";
  LG_WARN << "seen";

  ASSERT_EQ(lines->size(), 1u);
  EXPECT_EQ((*lines)[0].text, "WARN  seen");
}

TEST(Logging, TimeProviderPrefixesSimulatedTimestamp) {
  LoggerGuard guard;
  auto& log = Logger::instance();
  log.set_level(LogLevel::kInfo);
  log.set_time_provider(+[] { return 12.5; });
  auto* lines = capture(log);

  LG_INFO << "tick";

  ASSERT_EQ(lines->size(), 1u);
  EXPECT_EQ((*lines)[0].text, "[t=12.50] INFO  tick");
}

TEST(Logging, OffLevelSuppressesEverything) {
  LoggerGuard guard;
  auto& log = Logger::instance();
  log.set_level(LogLevel::kOff);
  auto* lines = capture(log);

  EXPECT_FALSE(log.enabled(LogLevel::kError));
  LG_ERROR << "must not appear";
  log.write(LogLevel::kError, "direct write must not appear");

  EXPECT_TRUE(lines->empty());
}

TEST(Logging, KOffIsNeverEnabledAsAMessageLevel) {
  LoggerGuard guard;
  auto& log = Logger::instance();
  log.set_level(LogLevel::kTrace);
  // Even with everything else enabled, kOff itself is not a writable level.
  EXPECT_FALSE(log.enabled(LogLevel::kOff));
}

}  // namespace
}  // namespace lg::util
