#!/usr/bin/env python3
"""Documentation consistency checks, run by the docs CI job.

1. Every relative markdown link in README.md, DESIGN.md, EXPERIMENTS.md,
   PAPER.md, ROADMAP.md, and docs/*.md must resolve to an existing file
   (external http(s)/mailto links and pure #anchors are skipped).
2. Every src/<subsystem>/ directory must appear in the module map of
   docs/ARCHITECTURE.md, so the architecture doc cannot silently rot as
   subsystems are added.
3. Every LG_* environment knob read by src/, bench/, or tests/ code (an
   exact "LG_..." string literal — the getenv / *_from_env call-site
   idiom) must have a row in docs/OPERATORS.md's knob table, and every
   documented knob must still exist in the code, so the operator doc can
   neither lag nor accumulate stale rows.

Exit status 0 = clean, 1 = problems (each printed on its own line).
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = ["README.md", "DESIGN.md", "EXPERIMENTS.md", "PAPER.md",
             "ROADMAP.md"]
ARCHITECTURE = REPO / "docs" / "ARCHITECTURE.md"

# [text](target) — excluding images' leading ! is unnecessary: image targets
# must exist too. Nested brackets in link text are out of scope.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def check_links(path: Path) -> list:
    problems = []
    text = path.read_text(encoding="utf-8")
    in_code = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_code = not in_code
            continue
        if in_code:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target = target.split("#", 1)[0]  # strip in-file anchors
            if not target:
                continue
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(REPO)}:{lineno}: broken link -> "
                    f"{match.group(1)}")
    return problems


def check_module_map() -> list:
    if not ARCHITECTURE.exists():
        return ["docs/ARCHITECTURE.md is missing"]
    text = ARCHITECTURE.read_text(encoding="utf-8")
    problems = []
    for sub in sorted(p.name for p in (REPO / "src").iterdir() if p.is_dir()):
        if f"`src/{sub}/`" not in text:
            problems.append(
                f"docs/ARCHITECTURE.md: module map has no `src/{sub}/` entry")
    return problems


OPERATORS = REPO / "docs" / "OPERATORS.md"
# Exact quoted knob names only: prose like "replay with LG_CHECK_SEED=..."
# inside longer literals is not a read site.
KNOB_READ_RE = re.compile(r'"(LG_[A-Z0-9_]+)"')
# First table column: | `LG_FOO` | ...
KNOB_ROW_RE = re.compile(r"^\|\s*`(LG_[A-Z0-9_]+)`", re.MULTILINE)


def check_knob_table() -> list:
    if not OPERATORS.exists():
        return ["docs/OPERATORS.md is missing"]
    documented = set(KNOB_ROW_RE.findall(
        OPERATORS.read_text(encoding="utf-8")))
    read_sites = {}
    for top in ("src", "bench", "tests"):
        for path in sorted((REPO / top).rglob("*")):
            if path.suffix not in (".cc", ".h"):
                continue
            for knob in KNOB_READ_RE.findall(
                    path.read_text(encoding="utf-8")):
                read_sites.setdefault(knob, path.relative_to(REPO))
    problems = []
    for knob in sorted(set(read_sites) - documented):
        problems.append(
            f"docs/OPERATORS.md: knob table has no `{knob}` row "
            f"(read in {read_sites[knob]})")
    for knob in sorted(documented - set(read_sites)):
        problems.append(
            f"docs/OPERATORS.md: stale knob row `{knob}` "
            f"(no read site in src/, bench/, or tests/)")
    return problems


def main() -> int:
    problems = []
    targets = [REPO / name for name in DOC_FILES]
    targets += sorted((REPO / "docs").glob("*.md"))
    for path in targets:
        if path.exists():
            problems.extend(check_links(path))
        else:
            problems.append(f"expected documentation file missing: "
                            f"{path.relative_to(REPO)}")
    problems.extend(check_module_map())
    problems.extend(check_knob_table())

    for p in problems:
        print(p)
    if not problems:
        print(f"docs OK: {len(targets)} files link-checked, "
              f"module map covers all of src/, knob table covers every "
              f"LG_* read site")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
