#!/usr/bin/env python3
"""Validate BENCH_*.json run reports against the lg.run_report.v2 schema.

Usage:
    check_run_report.py FILE [FILE...]          # validate, exit 1 on failure
    check_run_report.py --canon FILE            # canonicalize to stdout

Validation pins the schema contract that obs/report.cc emits and that
trajectory-diffing across PRs depends on: exact top-level sections, v1
fields unchanged, the v2 additions (traces.ring_dropped, spans) present and
internally consistent, and trace timestamps monotone.

--canon prints the report re-serialized with the "spans" section removed.
The spans section is the one part of the report allowed to differ between a
spans-on and a spans-off run of the same bench (everything else, including
stdout, must be byte-identical), so CI byte-diffs the canonical forms.
"""

import json
import sys

SCHEMA = "lg.run_report.v2"
TOP_KEYS = ["schema", "report", "config", "headline", "metrics", "traces",
            "spans"]
DIST_KEYS = {"count", "mean", "stddev", "min", "max", "p50", "p90", "p99"}
EVENT_KEYS = {"t", "kind", "a", "b", "value"}
PROFILE_KEYS = {"count", "open", "total_seconds", "mean", "min", "max",
                "p50", "p90", "p99"}


class Invalid(Exception):
    pass


def need(cond, msg):
    if not cond:
        raise Invalid(msg)


def is_num(x):
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def validate(doc):
    need(isinstance(doc, dict), "top level must be an object")
    need(list(doc.keys()) == TOP_KEYS,
         f"top-level keys must be exactly {TOP_KEYS}, got {list(doc.keys())}")
    need(doc["schema"] == SCHEMA, f"schema must be {SCHEMA!r}")
    need(isinstance(doc["report"], str) and doc["report"],
         "report must be a non-empty string")
    for section in ("config", "headline"):
        need(isinstance(doc[section], dict), f"{section} must be an object")
        for k, v in doc[section].items():
            need(isinstance(v, (str, bool)) or is_num(v),
                 f"{section}[{k!r}] must be a scalar")

    metrics = doc["metrics"]
    need(isinstance(metrics, dict), "metrics must be an object")
    need(set(metrics.keys()) == {"counters", "gauges", "distributions"},
         "metrics must hold counters/gauges/distributions")
    counters = metrics["counters"]
    for k, v in counters.items():
        need(isinstance(v, int) and v >= 0,
             f"counter {k!r} must be a non-negative integer")
    # Canonical counters every report carries, even when zero.
    for k in ("lg.bgp.updates_sent", "lg.scheduler.events_executed"):
        need(k in counters, f"canonical counter {k!r} missing")
    for k, v in metrics["gauges"].items():
        need(set(v.keys()) == {"value", "max"} and all(map(is_num, v.values())),
             f"gauge {k!r} must hold numeric value/max")
    for k, v in metrics["distributions"].items():
        need(set(v.keys()) == DIST_KEYS,
             f"distribution {k!r} keys must be {sorted(DIST_KEYS)}")
        need(all(map(is_num, v.values())),
             f"distribution {k!r} values must be numeric")

    traces = doc["traces"]
    need(list(traces.keys()) == ["recorded", "dropped", "ring_dropped",
                                 "events"],
         "traces must hold recorded/dropped/ring_dropped/events")
    for k in ("recorded", "dropped", "ring_dropped"):
        need(isinstance(traces[k], int) and traces[k] >= 0,
             f"traces.{k} must be a non-negative integer")
    events = traces["events"]
    need(isinstance(events, list), "traces.events must be an array")
    need(traces["recorded"] == traces["dropped"] + len(events),
         "traces.recorded must equal dropped + len(events)")
    need(traces["ring_dropped"] <= traces["dropped"],
         "ring drops are a subset of total drops")
    last_t = float("-inf")
    for i, ev in enumerate(events):
        need(set(ev.keys()) == EVENT_KEYS,
             f"event #{i} keys must be {sorted(EVENT_KEYS)}")
        need(is_num(ev["t"]) and isinstance(ev["kind"], str),
             f"event #{i} has malformed t/kind")
        need(ev["t"] >= last_t, f"event #{i} timestamp runs backwards")
        last_t = ev["t"]

    spans = doc["spans"]
    need(list(spans.keys()) == ["captured", "count", "open", "by_name"],
         "spans must hold captured/count/open/by_name")
    need(isinstance(spans["captured"], bool), "spans.captured must be a bool")
    for k in ("count", "open"):
        need(isinstance(spans[k], int) and spans[k] >= 0,
             f"spans.{k} must be a non-negative integer")
    by_name = spans["by_name"]
    need(isinstance(by_name, dict), "spans.by_name must be an object")
    if not spans["captured"]:
        need(not by_name and spans["count"] == 0 and spans["open"] == 0,
             "an uncaptured spans section must be empty")
    total = total_open = 0
    for name, prof in by_name.items():
        need(set(prof.keys()) == PROFILE_KEYS,
             f"span profile {name!r} keys must be {sorted(PROFILE_KEYS)}")
        need(all(map(is_num, prof.values())),
             f"span profile {name!r} values must be numeric")
        need(prof["min"] <= prof["max"], f"span profile {name!r}: min > max")
        need(prof["p50"] <= prof["p90"] <= prof["p99"],
             f"span profile {name!r}: quantiles not ordered")
        need(prof["p99"] <= prof["max"],
             f"span profile {name!r}: p99 exceeds max")
        total += prof["count"]
        total_open += prof["open"]
    need(total == spans["count"],
         "spans.count must equal the sum of by_name counts")
    need(total_open == spans["open"],
         "spans.open must equal the sum of by_name opens")


def canon(doc):
    doc = dict(doc)
    doc.pop("spans", None)
    return json.dumps(doc, indent=2, sort_keys=False) + "\n"


def main(argv):
    args = argv[1:]
    canonical = False
    if args and args[0] == "--canon":
        canonical = True
        args = args[1:]
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in args:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
            validate(doc)
        except (OSError, json.JSONDecodeError, Invalid) as err:
            print(f"check_run_report: {path}: {err}", file=sys.stderr)
            failed = True
            continue
        if canonical:
            sys.stdout.write(canon(doc))
        else:
            print(f"check_run_report: {path}: OK "
                  f"({len(doc['metrics']['counters'])} counters, "
                  f"{len(doc['spans']['by_name'])} span names)",
                  file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
