// §6 extension — the multi-prefix always-on service plane (lg::fleet).
//
// The fleet harness (sec6_fleet_scale) scales the *monitored set*; this
// harness scales the *serviced set*: a keyed universe of (prefix,
// origin-policy) pairs, each with its own episode machine, driven by a
// streaming (open-ended) outage arrival process instead of a pre-sampled
// trial script. It measures what a long-lived deployment cares about:
//
//   * sustained episode throughput (episodes/sim-hour, and wall-clock
//     episodes/sec on stderr),
//   * the time-to-remediate distribution up to p99,
//   * announcement-budget utilization, which must sit in [0, 1] — the
//     regression surface for the AnnouncementBudget::utilization bug where
//     a drain running past the nominal horizon read > 1.0,
//   * steady-state RSS with a >= 100k-prefix universe (stderr only; gate
//     with LG_RSS_CEILING_MB).
//
// Checkpoint/restore: LG_SERVICE_CHECKPOINT_AT=<sim s> stops the streaming
// cell at the first tick boundary past that time and serializes every shard
// into LG_SERVICE_CHECKPOINT_PATH (default service_checkpoint.bin);
// LG_SERVICE_RESTORE_PATH=<file> resumes the streaming cell from such a file
// and continues to the horizon. A restored run's stdout and
// BENCH_sec6_service_plane.json are byte-identical to an uninterrupted run —
// that equality, under LG_THREADS 1 vs 4, is CI's service-plane check.
//
// Parallel structure: ServiceScheduler fans its 16 shards out on
// lg::run::TrialRunner, so stdout and the JSON report are byte-identical for
// any LG_THREADS; only wall-clock (stderr) changes.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "fleet/env_knobs.h"
#include "fleet/service_plane.h"
#include "util/strings.h"
#include "util/thread_pool.h"

using namespace lg;

namespace {

fleet::ServiceConfig trace_config() {
  fleet::ServiceConfig cfg;
  // Per-shard world sized like the fleet bench cells: enough responding
  // routers for the client quota, small enough to build 16 of them fast.
  cfg.shard_topology.num_tier1 = 4;
  cfg.shard_topology.num_large_transit = 10;
  cfg.shard_topology.num_small_transit = 30;
  cfg.shard_topology.num_stubs = 110;
  return fleet::ServiceConfig::from_env(cfg);
}

double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[idx < sorted.size() ? idx : sorted.size() - 1];
}

// Resident set in MB from /proc/self/status. Hardware/allocator-dependent:
// stderr only, never stdout or the JSON report.
double rss_mb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0.0;
  char line[256];
  double kb = 0.0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      kb = std::strtod(line + 6, nullptr);
      break;
    }
  }
  std::fclose(f);
  return kb / 1024.0;
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

void print_result(const fleet::ServiceResult& result) {
  using O = fleet::EpisodeOutcome;
  bench::section("Streaming service plane — episodes and remediation");
  bench::kv("serviced prefixes", std::to_string([&] {
              std::size_t n = 0;
              for (const auto& s : result.shards) n += s.prefixes;
              return n;
            }()));
  bench::kv("monitored clients", std::to_string([&] {
              std::size_t n = 0;
              for (const auto& s : result.shards) n += s.clients;
              return n;
            }()));
  bench::kv("outages injected", std::to_string(result.outages_injected()));
  bench::kv("episodes opened", std::to_string(result.episodes_opened()));
  bench::kv("episodes closed", std::to_string(result.episodes_closed()));
  bench::kv("episodes / sim hour",
            util::fixed(result.episodes_per_sim_hour(), 1));
  for (const O o : {O::kResolvedSelf, O::kNoBlame, O::kDeclined,
                    O::kRemediated, O::kVerifyTimeout}) {
    bench::kv(std::string("  outcome: ") + fleet::episode_outcome_name(o),
              std::to_string(result.outcome_count(o)));
  }
  bench::kv("slot leases", std::to_string([&] {
              std::uint64_t n = 0;
              for (const auto& s : result.shards) n += s.slot_leases;
              return n;
            }()));
  bench::kv("slot waits", std::to_string([&] {
              std::uint64_t n = 0;
              for (const auto& s : result.shards) n += s.slot_waits;
              return n;
            }()));
  bench::kv("open at end", std::to_string([&] {
              std::size_t n = 0;
              for (const auto& s : result.shards) n += s.open_at_end;
              return n;
            }()));
  char digest[32];
  std::snprintf(digest, sizeof(digest), "%016llx",
                static_cast<unsigned long long>(fnv1a(result.fingerprint())));
  bench::kv("behaviour digest (FNV-1a)", digest);

  bench::section("Time-to-remediate CDF");
  const auto lat = result.remediate_latencies();
  if (lat.empty()) {
    std::printf("  (no remediated episodes)\n");
  } else {
    for (const double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.00}) {
      std::printf("  p%-4.0f %8.0f s\n", q * 100.0, quantile(lat, q));
    }
  }

  bench::section("Announcement-budget utilization (must be in [0, 1])");
  std::printf("  %-6s %-12s %-12s %-12s %-8s %-8s\n", "shard", "spent",
              "capacity", "utilization", "granted", "denied");
  for (const auto& s : result.shards) {
    std::printf("  %-6zu %-12.1f %-12.1f %-12.3f %-8llu %-8llu\n", s.shard,
                s.announce_spent, s.announce_capacity, s.announce_utilization,
                static_cast<unsigned long long>(s.announce_granted),
                static_cast<unsigned long long>(s.announce_denied));
  }
  bench::kv("budget respected (spent <= cap, util in [0,1])",
            result.budget_respected() ? "yes" : "NO");
}

}  // namespace

int main() {
  bench::header("Section 6 extension — multi-prefix always-on service plane",
                "streaming outage arrivals over a keyed prefix universe with "
                "per-prefix episode machines, leased remediation slots, and "
                "mid-stream checkpoint/restore");
  bench::JsonReport jr("sec6_service_plane");
  obs::TraceRing::global().set_capacity(1 << 16);

  const fleet::ServiceConfig cfg = trace_config();
  jr->set_config("prefixes", static_cast<double>(cfg.prefixes));
  jr->set_config("clients", static_cast<double>(cfg.clients));
  jr->set_config("shards", static_cast<double>(cfg.shards));
  jr->set_config("horizon_seconds", cfg.horizon_seconds);
  jr->set_config("tick_seconds", cfg.tick_seconds);
  jr->set_config("outages_per_hour", cfg.outages_per_hour);
  jr->set_config("announce_per_hour", cfg.announce_per_hour);
  jr->set_config("slots", static_cast<double>(cfg.slots));

  // Checkpoint/restore plumbing (all three knobs are operator input:
  // garbage throws a named diagnostic instead of silently running the
  // default — see fleet/env_knobs.h).
  const double checkpoint_at =
      fleet::env_double_knob("LG_SERVICE_CHECKPOINT_AT", 0.0, 0.0);
  const char* checkpoint_path_env = std::getenv("LG_SERVICE_CHECKPOINT_PATH");
  const std::string checkpoint_path =
      checkpoint_path_env != nullptr && checkpoint_path_env[0] != '\0'
          ? checkpoint_path_env
          : "service_checkpoint.bin";
  const char* restore_path = std::getenv("LG_SERVICE_RESTORE_PATH");

  fleet::ServiceScheduler scheduler(cfg);
  fleet::ServiceResult result;
  const auto wall_start = std::chrono::steady_clock::now();
  {
    bench::WallClock wc(
        "service plane", cfg.shards,
        cfg.threads ? cfg.threads : util::default_thread_count());
    if (restore_path != nullptr && restore_path[0] != '\0') {
      result = scheduler.resume(
          fleet::ServiceScheduler::read_checkpoint(restore_path, cfg.shards));
    } else if (checkpoint_at > 0.0) {
      result = scheduler.run_until(checkpoint_at);
    } else {
      result = scheduler.run();
    }
  }
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wall_start)
                          .count();
  std::fprintf(stderr, "[service plane] %.1f episodes/sec wall-clock\n",
               wall > 0.0 ? static_cast<double>(result.episodes_closed()) / wall
                          : 0.0);
  if (checkpoint_at > 0.0 &&
      (restore_path == nullptr || restore_path[0] == '\0')) {
    fleet::ServiceScheduler::write_checkpoint(result, checkpoint_path);
    std::fprintf(stderr, "[service plane] checkpoint at t=%.0f -> %s\n",
                 checkpoint_at, checkpoint_path.c_str());
  }

  print_result(result);

  // ---- Steady-state memory cell: a >= 100k-prefix universe. ----
  // Per-prefix cost is a few dozen POD bytes plus bounded report rings, so
  // RSS must stay flat no matter how long the stream runs. RSS numbers are
  // allocator- and hardware-dependent: stderr only.
  fleet::ServiceConfig mem_cfg = cfg;
  mem_cfg.prefixes = std::max<std::size_t>(cfg.prefixes, 100000);
  mem_cfg.horizon_seconds = 1800.0;
  mem_cfg.drain_cap_seconds = 3600.0;
  bench::section("Steady-state memory — 100k-prefix universe");
  fleet::ServiceResult mem_result;
  {
    bench::WallClock wc(
        "service plane 100k prefixes", mem_cfg.shards,
        mem_cfg.threads ? mem_cfg.threads : util::default_thread_count());
    fleet::ServiceScheduler mem_scheduler(mem_cfg);
    mem_result = mem_scheduler.run();
  }
  bench::kv("serviced prefixes", std::to_string([&] {
              std::size_t n = 0;
              for (const auto& s : mem_result.shards) n += s.prefixes;
              return n;
            }()));
  bench::kv("episodes closed", std::to_string(mem_result.episodes_closed()));
  bench::kv("budget respected", mem_result.budget_respected() ? "yes" : "NO");
  const double rss = rss_mb();
  std::fprintf(stderr, "[service plane 100k prefixes] steady-state RSS %.1f MB\n",
               rss);
  const double rss_ceiling =
      fleet::env_double_knob("LG_RSS_CEILING_MB", 0.0, 0.0);
  bool rss_ok = true;
  if (rss_ceiling > 0.0 && rss > rss_ceiling) {
    std::fprintf(stderr,
                 "[service plane 100k prefixes] ERROR: RSS %.1f MB exceeds "
                 "LG_RSS_CEILING_MB=%.1f\n",
                 rss, rss_ceiling);
    rss_ok = false;
  }

  // ---- Headlines ----
  const auto lat = result.remediate_latencies();
  jr->headline("episodes_opened",
               static_cast<double>(result.episodes_opened()));
  jr->headline("episodes_closed",
               static_cast<double>(result.episodes_closed()));
  jr->headline("episodes_per_sim_hour", result.episodes_per_sim_hour());
  jr->headline("remediated", static_cast<double>(result.outcome_count(
                                 fleet::EpisodeOutcome::kRemediated)));
  if (!lat.empty()) {
    jr->headline("remediate_p50_s", quantile(lat, 0.5));
    jr->headline("remediate_p90_s", quantile(lat, 0.9));
    jr->headline("remediate_p99_s", quantile(lat, 0.99));
  }
  double util_max = 0.0;
  for (const auto& s : result.shards) {
    if (s.announce_utilization > util_max) util_max = s.announce_utilization;
  }
  jr->headline("announce_utilization_max", util_max);
  jr->headline("budget_respected", result.budget_respected() ? 1.0 : 0.0);
  jr->headline("mem_cell_prefixes", static_cast<double>([&] {
                 std::size_t n = 0;
                 for (const auto& s : mem_result.shards) n += s.prefixes;
                 return n;
               }()));
  jr->headline("mem_cell_episodes_closed",
               static_cast<double>(mem_result.episodes_closed()));

  if (!result.budget_respected() || !mem_result.budget_respected()) {
    std::printf(
        "\n  ERROR: a shard exceeded its announcement cap or reported "
        "utilization outside [0, 1]\n");
    return 1;
  }
  return rss_ok ? 0 : 1;
}
