// Figure 1 reproduction: CDF of partial-outage durations observed from
// EC2-like monitoring, and the fraction of total unreachability contributed
// by outages of at most a given duration.
//
// Paper: 10,308 partial outages; >90% last <= 10 minutes, yet 84% of total
// unavailability comes from outages > 10 minutes; median 90 s (the floor).
#include <cstdio>

#include "bench/bench_util.h"
#include "run/trial_runner.h"
#include "util/stats.h"
#include "workload/outages.h"

int main() {
  using namespace lg;
  bench::header("Figure 1",
                "Outage durations vs their contribution to unavailability "
                "(EC2-calibrated synthetic study, n=10,308)");
  bench::JsonReport jr("fig1_outage_durations");
  constexpr std::size_t kReplicates = 16;
  jr->set_config("num_outages", 10308.0);
  jr->set_config("replicate_studies", static_cast<double>(kReplicates));

  // Trial 0 regenerates the canonical study (historical seed) the tables
  // below print; trials 1.. are independently re-seeded replicates for the
  // stability section. All run in parallel on the trial runner.
  run::TrialRunner runner;
  std::vector<util::EmpiricalCdf> studies;
  {
    bench::WallClock wc("fig1_outage_durations", kReplicates,
                        runner.threads());
    studies = runner.run(kReplicates, [](run::TrialContext& ctx) {
      const std::uint64_t seed = ctx.index == 0 ? 20100720ULL : ctx.seed;
      return workload::generate_outage_study(10308, {}, seed);
    });
  }
  const auto& study = studies.front();

  bench::section("CDF (duration in minutes, log-spaced as in the figure)");
  std::printf("  %-16s %-22s %-28s\n", "duration (min)", "frac of outages",
              "frac of total unreachability");
  const double minutes[] = {1.5, 2,   3,   5,    10,   20,   30,  60,
                            120, 240, 480, 1440, 2880, 7200, 10080};
  for (const double m : minutes) {
    const double cdf = study.cdf(m * 60.0);
    const double mass_cdf = 1.0 - study.mass_fraction_above(m * 60.0);
    std::printf("  %-16.1f %-22.3f %-28.3f\n", m, cdf, mass_cdf);
  }

  bench::section("Headline statistics vs paper");
  bench::compare_row("outages lasting <= 10 min", ">90%",
                     util::pct(study.cdf(600.0)));
  bench::compare_row("unavailability from outages > 10 min", "84%",
                     util::pct(study.mass_fraction_above(600.0)));
  bench::compare_row("median outage duration", "90 s (floor)",
                     util::fixed(study.median(), 0) + " s");
  bench::compare_row("total outages analyzed", "10,308",
                     std::to_string(study.count()));

  bench::section("Replication stability (independently re-seeded studies)");
  util::Summary rep_leq10, rep_mass, rep_median;
  for (std::size_t i = 1; i < studies.size(); ++i) {
    rep_leq10.add(studies[i].cdf(600.0));
    rep_mass.add(studies[i].mass_fraction_above(600.0));
    rep_median.add(studies[i].median());
  }
  bench::kv("replicate studies", std::to_string(rep_leq10.count()));
  std::printf("  %-40s %-10s %-10s %-10s\n", "statistic", "min", "mean",
              "max");
  std::printf("  %-40s %-10.3f %-10.3f %-10.3f\n", "frac outages <= 10 min",
              rep_leq10.min(), rep_leq10.mean(), rep_leq10.max());
  std::printf("  %-40s %-10.3f %-10.3f %-10.3f\n",
              "frac unavailability > 10 min", rep_mass.min(), rep_mass.mean(),
              rep_mass.max());
  std::printf("  %-40s %-10.1f %-10.1f %-10.1f\n", "median outage (s)",
              rep_median.min(), rep_median.mean(), rep_median.max());

  jr->headline("frac_outages_leq_10min", study.cdf(600.0));
  jr->headline("frac_unavailability_gt_10min", study.mass_fraction_above(600.0));
  jr->headline("median_outage_seconds", study.median());
  jr->headline("outages_analyzed", static_cast<double>(study.count()));
  jr->headline("replicate_frac_leq_10min_mean", rep_leq10.mean());
  jr->headline("replicate_mass_gt_10min_mean", rep_mass.mean());
  return 0;
}
