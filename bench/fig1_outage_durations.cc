// Figure 1 reproduction: CDF of partial-outage durations observed from
// EC2-like monitoring, and the fraction of total unreachability contributed
// by outages of at most a given duration.
//
// Paper: 10,308 partial outages; >90% last <= 10 minutes, yet 84% of total
// unavailability comes from outages > 10 minutes; median 90 s (the floor).
#include <cstdio>

#include "bench/bench_util.h"
#include "workload/outages.h"

int main() {
  using namespace lg;
  bench::header("Figure 1",
                "Outage durations vs their contribution to unavailability "
                "(EC2-calibrated synthetic study, n=10,308)");
  bench::JsonReport jr("fig1_outage_durations");
  jr->set_config("num_outages", 10308.0);

  const auto study = workload::generate_outage_study(10308);

  bench::section("CDF (duration in minutes, log-spaced as in the figure)");
  std::printf("  %-16s %-22s %-28s\n", "duration (min)", "frac of outages",
              "frac of total unreachability");
  const double minutes[] = {1.5, 2,   3,   5,    10,   20,   30,  60,
                            120, 240, 480, 1440, 2880, 7200, 10080};
  for (const double m : minutes) {
    const double cdf = study.cdf(m * 60.0);
    const double mass_cdf = 1.0 - study.mass_fraction_above(m * 60.0);
    std::printf("  %-16.1f %-22.3f %-28.3f\n", m, cdf, mass_cdf);
  }

  bench::section("Headline statistics vs paper");
  bench::compare_row("outages lasting <= 10 min", ">90%",
                     util::pct(study.cdf(600.0)));
  bench::compare_row("unavailability from outages > 10 min", "84%",
                     util::pct(study.mass_fraction_above(600.0)));
  bench::compare_row("median outage duration", "90 s (floor)",
                     util::fixed(study.median(), 0) + " s");
  bench::compare_row("total outages analyzed", "10,308",
                     std::to_string(study.count()));

  jr->headline("frac_outages_leq_10min", study.cdf(600.0));
  jr->headline("frac_unavailability_gt_10min", study.mass_fraction_above(600.0));
  jr->headline("median_outage_seconds", study.median());
  jr->headline("outages_analyzed", static_cast<double>(study.count()));
  return 0;
}
