// Internet-scale substrate check — can the engine hold a full AS-graph's
// routing state and converge it on one machine?
//
// The paper operates on the real Internet (~40k ASes in 2012; ~70k today,
// measured via CAIDA's AS-relationship dumps). This harness loads that scale
// — LG_TOPOLOGY_FILE for a real CAIDA dump, LG_TOPOLOGY_SCALE or the 70k
// default for the degree-matched synthetic — wires a bare Scheduler +
// BgpEngine (no SimWorld: announcing one infrastructure /24 per AS is an
// N^2 RIB nobody needs), and runs three cells:
//   1. originate-and-converge: one production prefix from a multihomed stub
//      reaches the whole graph; bytes/route from the deterministic
//      rib_memory() accounting is the headline.
//   2. poison-repair: the origin poisons its highest-degree provider
//      (O-X-O) and the world re-converges around it — the §4 primitive at
//      full scale.
//   3. §2.2 alternate-path sweep: for sampled (vantage, culprit-on-path)
//      pairs, does a policy-compliant path avoiding the culprit exist
//      (ValleyFreeOracle)? Paper: alternates existed for 49% of outages
//      overall, 83% of those lasting >= 1 h.
//
// Determinism contract: stdout and BENCH_internet_scale.json are
// byte-identical for every LG_THREADS/LG_WORLD_THREADS value (CI diffs
// them); wall time and RSS — the nondeterministic readings — go to stderr
// only. LG_RSS_CEILING_MB=<n> turns the peak-RSS reading into an exit-code
// gate for CI.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bgp/engine.h"
#include "mem/rss.h"
#include "topology/addressing.h"
#include "topology/generator.h"
#include "topology/valley_free.h"
#include "util/rng.h"
#include "util/scheduler.h"

using namespace lg;
using topo::AsId;
using topo::Prefix;

namespace {

// FNV-1a over every AS's converged best route (path + advertising
// neighbor), in ascending AS order: one number that must match across
// thread counts and sessions for the same topology + seed.
std::uint64_t rib_fingerprint(const bgp::BgpEngine& engine,
                              const topo::AsGraph& graph, const Prefix& p) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  for (const AsId as : graph.as_ids()) {
    const bgp::Route* best = engine.best_route(as, p);
    mix(as);
    if (best == nullptr) {
      mix(0xdeadULL);
      continue;
    }
    mix(best->neighbor);
    for (const AsId hop : best->path.get()) mix(hop);
  }
  return h;
}

std::size_t count_with_route(const bgp::BgpEngine& engine,
                             const topo::AsGraph& graph, const Prefix& p) {
  std::size_t n = 0;
  for (const AsId as : graph.as_ids()) {
    if (engine.best_route(as, p) != nullptr) ++n;
  }
  return n;
}

// Traffic from `as` toward the origin crosses `x` iff x appears on the
// best path before the origin (announcement artifacts past the origin are
// not hops, bgp::path_traverses).
std::size_t count_through(const bgp::BgpEngine& engine,
                          const topo::AsGraph& graph, const Prefix& p,
                          AsId x, AsId origin) {
  std::size_t n = 0;
  for (const AsId as : graph.as_ids()) {
    const bgp::Route* best = engine.best_route(as, p);
    if (best != nullptr && bgp::path_traverses(best->path, x, origin)) ++n;
  }
  return n;
}

}  // namespace

int main() {
  bench::header("Internet scale",
                "Full AS-graph convergence, memory-lean RIB storage, and the "
                "paper's primitives at real-Internet size");
  bench::JsonReport jr("internet_scale");

  // ---- topology ----
  const char* file = std::getenv("LG_TOPOLOGY_FILE");
  const char* scale = std::getenv("LG_TOPOLOGY_SCALE");
  topo::GeneratedTopology topo;
  if ((file != nullptr && file[0] != '\0') ||
      (scale != nullptr && scale[0] != '\0')) {
    topo = topo::topology_from_env({});  // FILE wins over SCALE
  } else {
    topo = topo::generate_internet_scale({});  // 70k-AS synthetic default
  }
  jr->set_config("source", file != nullptr && file[0] != '\0'
                               ? std::string(file)
                               : std::string("synthetic"));
  jr->set_config("ases", static_cast<double>(topo.graph.num_ases()));
  jr->set_config("links", static_cast<double>(topo.graph.num_links()));
  bench::section("substrate");
  bench::kv("ASes", std::to_string(topo.graph.num_ases()));
  bench::kv("links", std::to_string(topo.graph.num_links()));
  bench::kv("tier-1 / transit / stub",
            std::to_string(topo.tier1.size()) + " / " +
                std::to_string(topo.large_transit.size() +
                               topo.small_transit.size()) +
                " / " + std::to_string(topo.stubs.size()));

  util::Scheduler sched;
  bgp::BgpEngine engine(topo.graph, sched);

  // Deterministic multihomed origin: the lowest-id stub with >= 2 providers
  // (poison repair needs an alternate provider to exist).
  AsId origin = topo::kInvalidAs;
  for (const AsId s : topo.stubs) {
    if (topo.graph.providers(s).size() >= 2) {
      origin = s;
      break;
    }
  }
  if (origin == topo::kInvalidAs) {
    std::fprintf(stderr, "no multihomed stub in topology\n");
    return 1;
  }
  const Prefix prefix = topo::AddressPlan::production_prefix(origin);
  bench::kv("origin AS", std::to_string(origin));

  // ---- cell 1: originate and converge ----
  bench::section("originate-and-converge");
  {
    bench::WallClock wc("internet_scale/converge", 1, 1);
    bgp::OriginPolicy policy;
    policy.default_path = bgp::AsPath{origin};
    engine.originate(origin, prefix, policy);
    sched.run();
  }
  const std::size_t reached = count_with_route(engine, topo.graph, prefix);
  const std::uint64_t fp0 = rib_fingerprint(engine, topo.graph, prefix);
  const auto mem = engine.rib_memory();
  const double bytes_per_route =
      mem.routes == 0 ? 0.0
                      : static_cast<double>(mem.bytes) /
                            static_cast<double>(mem.routes);
  bench::kv("ASes with a route",
            std::to_string(reached) + " / " +
                std::to_string(topo.graph.num_ases()));
  bench::kv("resident routes", std::to_string(mem.routes));
  bench::kv("RIB container bytes", std::to_string(mem.bytes));
  bench::kv("bytes/route (structural)",
            std::to_string(static_cast<std::uint64_t>(bytes_per_route)));
  char fp_hex[32];
  std::snprintf(fp_hex, sizeof fp_hex, "%016llx",
                static_cast<unsigned long long>(fp0));
  bench::kv("RIB fingerprint", fp_hex);
  jr->headline("converged_ases", static_cast<double>(reached));
  jr->headline("rib_routes", static_cast<double>(mem.routes));
  jr->headline("rib_bytes", static_cast<double>(mem.bytes));
  jr->headline("bytes_per_route", bytes_per_route);
  jr->headline("fingerprint_converge", std::string(fp_hex));

  // ---- cell 2: poison repair ----
  bench::section("poison-repair (AVOID_PROBLEM via O-X-O)");
  const auto providers = topo.graph.providers(origin);
  const AsId poisoned = *std::max_element(
      providers.begin(), providers.end(), [&](AsId a, AsId b) {
        const auto da = topo.graph.degree(a), db = topo.graph.degree(b);
        return da != db ? da < db : a > b;
      });
  const std::size_t through_before =
      count_through(engine, topo.graph, prefix, poisoned, origin);
  {
    bench::WallClock wc("internet_scale/poison", 1, 1);
    bgp::OriginPolicy poison;
    poison.default_path = bgp::poisoned_path(origin, {poisoned}, 3);
    engine.originate(origin, prefix, poison);
    sched.run();
  }
  const std::size_t reached_after =
      count_with_route(engine, topo.graph, prefix);
  const std::size_t through_after =
      count_through(engine, topo.graph, prefix, poisoned, origin);
  const std::uint64_t fp1 = rib_fingerprint(engine, topo.graph, prefix);
  std::snprintf(fp_hex, sizeof fp_hex, "%016llx",
                static_cast<unsigned long long>(fp1));
  bench::kv("poisoned provider", std::to_string(poisoned));
  bench::kv("routed through it before", std::to_string(through_before));
  bench::kv("routed through it after", std::to_string(through_after));
  bench::kv("ASes with a route after poison",
            std::to_string(reached_after) + " / " +
                std::to_string(topo.graph.num_ases()));
  bench::kv("RIB fingerprint", fp_hex);
  jr->headline("poison_through_before", static_cast<double>(through_before));
  jr->headline("poison_through_after", static_cast<double>(through_after));
  jr->headline("poison_reached", static_cast<double>(reached_after));
  jr->headline("fingerprint_poison", std::string(fp_hex));

  // ---- cell 3: §2.2 alternate-path sweep at scale ----
  bench::section("sec2.2 policy-compliant alternates (oracle sweep)");
  const topo::ValleyFreeOracle oracle(topo.graph);
  util::Rng rng(2211, 0x70307030ULL);
  const std::size_t kSamples = 400;
  std::size_t outages = 0, with_alternate = 0;
  std::vector<AsId> vantage_pool = topo.stubs;
  for (std::size_t i = 0; i < kSamples * 4 && outages < kSamples; ++i) {
    const AsId src = rng.pick(vantage_pool);
    if (src == origin) continue;
    const bgp::Route* best = engine.best_route(src, prefix);
    if (best == nullptr || best->path.empty()) continue;
    // The culprit is a transit hop on src's current best path (§2.2's
    // "AS where the failed traceroute terminated").
    std::vector<AsId> hops;
    for (const AsId hop : best->path.get()) {
      if (hop != src && hop != origin) hops.push_back(hop);
    }
    if (hops.empty()) continue;
    const AsId culprit =
        hops[rng.uniform_u32(static_cast<std::uint32_t>(hops.size()))];
    ++outages;
    if (oracle.reachable(src, origin, topo::Avoidance::of_as(culprit))) {
      ++with_alternate;
    }
  }
  const double frac =
      outages == 0 ? 0.0
                   : static_cast<double>(with_alternate) /
                         static_cast<double>(outages);
  bench::compare_row("outages with policy-compliant alternate", "~90%",
                     std::to_string(static_cast<int>(frac * 100.0)) + "%",
                     "(existence per oracle; the 49% splice-detection rate "
                     "is bench/sec2_2)");
  bench::kv("sampled outages", std::to_string(outages));
  jr->set_config("alternate_samples", static_cast<double>(kSamples));
  jr->headline("alternate_fraction", frac);

  // ---- nondeterministic readings: stderr only ----
  const double peak_mb =
      static_cast<double>(mem::peak_rss_bytes()) / (1024.0 * 1024.0);
  std::fprintf(stderr, "[internet_scale] peak RSS %.1f MB\n", peak_mb);
  if (const char* ceiling = std::getenv("LG_RSS_CEILING_MB");
      ceiling != nullptr && ceiling[0] != '\0') {
    const double limit = std::atof(ceiling);
    if (limit > 0.0 && peak_mb > limit) {
      std::fprintf(stderr,
                   "[internet_scale] FAIL: peak RSS %.1f MB exceeds "
                   "LG_RSS_CEILING_MB=%.1f\n",
                   peak_mb, limit);
      return 1;
    }
    std::fprintf(stderr, "[internet_scale] RSS ceiling %.1f MB: ok\n", limit);
  }
  return 0;
}
