// §5.2 reproduction — data-plane loss during post-poisoning convergence,
// sampled every 10 s from vantage points pinging the poisoned prefix.
//
// Paper (with the prepended O-O-O baseline): after 60% of poisonings the
// overall loss was < 1%; 98% of poisonings had loss < 2%; only 2% had any
// 10-second bin above 10% loss. The no-prepend ablation shows where that
// loss comes from: path exploration while announcement lengths change.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "run/trial_runner.h"
#include "util/stats.h"
#include "workload/poison_experiment.h"
#include "workload/sim_world.h"

using namespace lg;
using topo::AsId;

namespace {

struct LossRun {
  std::size_t poisons = 0;
  std::size_t under_1pct = 0;
  std::size_t under_2pct = 0;
  std::size_t any_bad_bin = 0;
  util::EmpiricalCdf loss_rates;
  std::size_t cut_off = 0;
};

LossRun run_cell(std::size_t prepend) {
  workload::SimWorld world;
  AsId origin = topo::kInvalidAs;
  for (const AsId as : world.topology().stubs) {
    if (world.graph().providers(as).size() >= 2) {
      origin = as;
      break;
    }
  }
  workload::PoisonExperimentConfig cfg;
  cfg.baseline_prepend = prepend;
  cfg.measure_loss = true;
  cfg.loss_vantage_ases = world.stub_vantage_ases(40);
  workload::PoisonExperiment experiment(world, origin, cfg);
  experiment.setup();

  std::vector<AsId> feeds = world.feed_ases(25);
  for (const AsId as : world.stub_vantage_ases(60)) {
    if (as != origin) feeds.push_back(as);
  }
  const auto candidates = experiment.harvest_poison_candidates(feeds);

  LossRun result;
  for (const AsId target : candidates) {
    if (result.poisons >= 15) break;
    const auto outcome = experiment.poison_and_measure(target, feeds);
    if (!outcome.loss) continue;
    ++result.poisons;
    result.loss_rates.add(outcome.loss->overall_loss_rate);
    if (outcome.loss->overall_loss_rate < 0.01) ++result.under_1pct;
    if (outcome.loss->overall_loss_rate < 0.02) ++result.under_2pct;
    if (outcome.loss->worst_bin_loss_rate > 0.10) ++result.any_bad_bin;
    result.cut_off += outcome.loss->vantage_points_cut_off;
  }
  return result;
}

void report(const char* label, const LossRun& r, bool paper_anchors) {
  bench::section(std::string(label) + " (" + std::to_string(r.poisons) +
                 " poisonings)");
  const auto pct_of = [&](std::size_t n) {
    return r.poisons ? util::pct(static_cast<double>(n) /
                                 static_cast<double>(r.poisons))
                     : std::string("n/a");
  };
  if (paper_anchors) {
    bench::compare_row("poisonings with overall loss < 1%", "60%",
                       pct_of(r.under_1pct));
    bench::compare_row("poisonings with overall loss < 2%", "98%",
                       pct_of(r.under_2pct));
    bench::compare_row("poisonings with any 10 s bin > 10% loss", "2%",
                       pct_of(r.any_bad_bin));
  } else {
    bench::kv("poisonings with overall loss < 1%", pct_of(r.under_1pct));
    bench::kv("poisonings with overall loss < 2%", pct_of(r.under_2pct));
    bench::kv("poisonings with any 10 s bin > 10% loss",
              pct_of(r.any_bad_bin));
  }
  bench::kv("median / max overall loss",
            util::pct(r.loss_rates.quantile(0.5), 2) + " / " +
                util::pct(r.loss_rates.max(), 2));
  bench::kv("vantage points excluded as cut off", std::to_string(r.cut_off));
}

}  // namespace

int main() {
  bench::header("Section 5.2 'How much loss accompanies convergence?'",
                "Ping loss from 40 vantage points during poisoning "
                "convergence, 10 s bins");
  bench::JsonReport jr("sec5_2_loss");
  jr->set_config("loss_vantage_points", 40.0);
  jr->set_config("max_poisonings_per_run", 15.0);

  // Both configurations are independent worlds: one trial each on
  // lg::run::TrialRunner. Seeds are the defaults the serial harness used, so
  // every number is unchanged; only wall-clock improves.
  const std::vector<std::size_t> prepends = {3, 1};
  run::TrialRunner runner;
  std::vector<LossRun> results;
  {
    bench::WallClock wc("sec5_2_loss", prepends.size(), runner.threads());
    results = runner.run(prepends.size(), [&](run::TrialContext& ctx) {
      return run_cell(prepends[ctx.index]);
    });
  }
  const auto& prep = results[0];
  report("Prepended baseline O-O-O (the paper's configuration)", prep, true);

  const auto& noprep = results[1];
  report("Ablation: unprepended baseline O", noprep, false);

  jr->headline("poisonings_prepend", static_cast<double>(prep.poisons));
  if (prep.poisons) {
    jr->headline("frac_loss_under_1pct_prepend",
                 static_cast<double>(prep.under_1pct) /
                     static_cast<double>(prep.poisons));
    jr->headline("frac_loss_under_2pct_prepend",
                 static_cast<double>(prep.under_2pct) /
                     static_cast<double>(prep.poisons));
    jr->headline("median_loss_prepend", prep.loss_rates.quantile(0.5));
  }
  if (noprep.poisons) {
    jr->headline("frac_loss_under_1pct_noprepend",
                 static_cast<double>(noprep.under_1pct) /
                     static_cast<double>(noprep.poisons));
    jr->headline("median_loss_noprepend", noprep.loss_rates.quantile(0.5));
  }

  bench::section("Interpretation");
  std::printf(
      "  The prepended baseline keeps announcement length constant, so ASes\n"
      "  off the poisoned path replace their route in place and the data\n"
      "  plane never gaps; loss concentrates in the no-prepend ablation,\n"
      "  where path exploration leaves transient no-route windows.\n");
  return 0;
}
