// §5.3 reproduction — isolation accuracy:
//  * consistency of LIFEGUARD's verdict with ground truth across injected
//    unidirectional and bidirectional failures (paper: 169/182 = 93%
//    consistent with target-side traceroutes);
//  * fraction of outages where LIFEGUARD's verdict differs from what
//    traceroute alone would suggest (paper: 40%).
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/isolation.h"
#include "run/trial_runner.h"
#include "workload/scenarios.h"
#include "workload/sim_world.h"

using namespace lg;
using core::FailureDirection;
using topo::AsId;

namespace {

struct Score {
  std::size_t tested = 0;
  std::size_t direction_correct = 0;
  std::size_t blame_correct = 0;
  std::size_t traceroute_differs = 0;
  std::size_t traceroute_would_be_wrong = 0;
};

constexpr FailureDirection kDirections[] = {FailureDirection::kForward,
                                            FailureDirection::kReverse,
                                            FailureDirection::kBidirectional};
constexpr const char* kNames[] = {"forward", "reverse", "bidirectional"};
constexpr std::size_t kPerDirection = 61;  // ~183 total, as in the paper

// One trial per failure direction: its own world (identical default seed,
// so identical topology and routes) and its own scenario-generator stream.
Score run_direction(int d) {
  const FailureDirection direction = kDirections[d];
  workload::SimWorld world;
  const auto vp_ases = world.stub_vantage_ases(12);
  for (const AsId as : vp_ases) world.announce_production(as);
  world.converge();

  const auto vp = measure::VantagePoint::in_as(vp_ases[0]);
  std::vector<measure::VantagePoint> helpers;
  std::vector<AsId> witnesses;
  for (std::size_t i = 1; i < vp_ases.size(); ++i) {
    helpers.push_back(measure::VantagePoint::in_as(vp_ases[i]));
    witnesses.push_back(vp_ases[i]);
  }

  core::PathAtlas atlas;
  core::IsolationEngine engine(world.prober(), atlas);
  workload::ScenarioGenerator gen(world, 777 + static_cast<std::uint64_t>(d));

  Score score;
  for (const AsId target_as : world.topology().stubs) {
    if (score.tested >= kPerDirection) break;
    if (target_as == vp.as) continue;
    auto scenario = gen.make(vp.as, target_as, direction, false, witnesses);
    if (!scenario) continue;
    // Warm the atlas with the failure lifted (steady-state monitoring),
    // then re-install it.
    const auto failure_ids = scenario->failure_ids;
    scenario->failure_ids.clear();
    for (const auto id : failure_ids) world.failures().clear(id);
    atlas.refresh(world.prober(), vp, scenario->target, 0.0);
    switch (direction) {
      case FailureDirection::kForward:
        scenario->failure_ids.push_back(world.failures().inject(dp::Failure{
            .at_as = scenario->culprit_as, .toward_as = target_as}));
        break;
      case FailureDirection::kReverse:
        scenario->failure_ids.push_back(world.failures().inject(dp::Failure{
            .at_as = scenario->culprit_as, .toward_as = vp.as}));
        break;
      case FailureDirection::kBidirectional:
        scenario->failure_ids.push_back(world.failures().inject(dp::Failure{
            .at_as = scenario->culprit_as, .toward_as = target_as}));
        scenario->failure_ids.push_back(world.failures().inject(dp::Failure{
            .at_as = scenario->culprit_as, .toward_as = vp.as}));
        break;
      default:
        break;
    }

    const auto result = engine.isolate(vp, scenario->target, helpers);
    ++score.tested;
    if (result.direction == direction) ++score.direction_correct;
    if (result.blamed_as == scenario->culprit_as) ++score.blame_correct;
    if (result.traceroute_blame != result.blamed_as) {
      ++score.traceroute_differs;
      if (result.traceroute_blame != scenario->culprit_as) {
        ++score.traceroute_would_be_wrong;
      }
    }
    gen.repair(*scenario);
  }
  return score;
}

}  // namespace

int main() {
  bench::header("Section 5.3 / Table 1 'Accuracy'",
                "Failure isolation vs ground truth and vs traceroute-only");
  bench::JsonReport jr("sec5_3_accuracy");
  jr->set_config("vantage_points", 12.0);
  jr->set_config("failures_per_direction", 61.0);

  run::TrialRunner runner;
  std::vector<Score> per_direction;
  {
    bench::WallClock wc("sec5_3_accuracy", 3, runner.threads());
    per_direction = runner.run(
        3, [](run::TrialContext& ctx) {
          return run_direction(static_cast<int>(ctx.index));
        });
  }
  const char* const* names = kNames;

  bench::section("Per-direction results");
  std::printf("  %-15s %-8s %-12s %-12s %-14s\n", "direction", "tested",
              "dir correct", "AS correct", "tr differs");
  Score total;
  for (int d = 0; d < 3; ++d) {
    const Score& s = per_direction[d];
    std::printf("  %-15s %-8zu %-12zu %-12zu %-14zu\n", names[d], s.tested,
                s.direction_correct, s.blame_correct, s.traceroute_differs);
    total.tested += s.tested;
    total.direction_correct += s.direction_correct;
    total.blame_correct += s.blame_correct;
    total.traceroute_differs += s.traceroute_differs;
    total.traceroute_would_be_wrong += s.traceroute_would_be_wrong;
  }

  bench::section("Paper anchors");
  const auto frac = [&](std::size_t n) {
    return total.tested ? util::pct(static_cast<double>(n) /
                                    static_cast<double>(total.tested))
                        : std::string("n/a");
  };
  bench::kv("isolated failures", std::to_string(total.tested) +
                                     " (paper: 182 unidirectional + bidir)");
  bench::compare_row("verdict consistent with ground truth", "93% (169/182)",
                     frac(total.blame_correct));
  bench::compare_row("LIFEGUARD differs from traceroute-only diagnosis",
                     "40%", frac(total.traceroute_differs));
  if (total.traceroute_differs > 0) {
    bench::kv("...and when differing, traceroute-only was wrong",
              util::pct(static_cast<double>(total.traceroute_would_be_wrong) /
                        static_cast<double>(total.traceroute_differs)));
  }

  jr->headline("failures_tested", static_cast<double>(total.tested));
  if (total.tested) {
    jr->headline("frac_blame_correct",
                 static_cast<double>(total.blame_correct) /
                     static_cast<double>(total.tested));
    jr->headline("frac_direction_correct",
                 static_cast<double>(total.direction_correct) /
                     static_cast<double>(total.tested));
    jr->headline("frac_traceroute_differs",
                 static_cast<double>(total.traceroute_differs) /
                     static_cast<double>(total.tested));
  }
  return 0;
}
