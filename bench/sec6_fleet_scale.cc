// §6 extension — fleet-scale outage response (lg::fleet).
//
// The paper's deployment monitored targets on the order of hundreds and
// repaired outages one at a time; §5.4 argues the approach scales to
// Internet-wide deployment if announcement volume is paced. This harness
// measures that claim end-to-end: the lg::fleet service plane monitors
// 100 → 5000 destinations across 16 deterministic shards, injects Poisson
// outage workloads at two rates, and reports episode throughput, the
// time-to-remediate distribution, and announcement-budget utilization —
// which must never exceed the configured token bucket (the acceptance
// criterion of the plane's §5.4 pacing story).
//
// Parallel structure: FleetScheduler fans its shards out on
// lg::run::TrialRunner, so stdout and BENCH_sec6_fleet_scale.json are
// byte-identical for any LG_THREADS value; only wall-clock changes (written
// to stderr).
//
// Environment: LG_FLEET_TARGETS=<n> replaces the target sweep with one size;
// LG_FLEET_ANNOUNCE_BUDGET / LG_FLEET_PROBE_BUDGET re-pace the buckets
// (docs/OPERATORS.md).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "fleet/fleet_scheduler.h"
#include "util/strings.h"
#include "util/thread_pool.h"

using namespace lg;

namespace {

fleet::FleetConfig cell_config(std::size_t targets, double outages_per_hour) {
  fleet::FleetConfig cfg;
  cfg.targets = targets;
  cfg.outages_per_hour = outages_per_hour;
  // Per-shard world sized so the largest cell (5000/16 = 313 targets) fits
  // inside one shard's responding router population.
  cfg.shard_topology.num_tier1 = 4;
  cfg.shard_topology.num_large_transit = 10;
  cfg.shard_topology.num_small_transit = 30;
  cfg.shard_topology.num_stubs = 110;
  return fleet::FleetConfig::from_env(cfg);
}

double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[idx < sorted.size() ? idx : sorted.size() - 1];
}

}  // namespace

int main() {
  bench::header("Section 6 extension — fleet-scale outage response",
                "lg::fleet episode throughput, remediation latency, and "
                "announcement pacing vs fleet size");
  bench::JsonReport jr("sec6_fleet_scale");
  // The 5000-target cells record far more episode events than the default
  // 4096-slot ring holds; at 64 K the merged ring keeps the full run
  // (report "traces"/"ring_dropped" stays 0) and a Perfetto export shows
  // every instant, not just the tail.
  obs::TraceRing::global().set_capacity(1 << 16);

  std::vector<std::size_t> sizes = {100, 500, 1000, 2500, 5000};
  if (const char* v = std::getenv("LG_FLEET_TARGETS")) {
    char* end = nullptr;
    const unsigned long long n = std::strtoull(v, &end, 10);
    if (end != v && n > 0) sizes = {static_cast<std::size_t>(n)};
  }
  const std::vector<double> rates = {12.0, 48.0};

  jr->set_config("sizes", static_cast<double>(sizes.size()));
  jr->set_config("outage_rates", static_cast<double>(rates.size()));
  {
    const fleet::FleetConfig probe = cell_config(sizes.front(), rates.front());
    jr->set_config("shards", static_cast<double>(probe.shards));
    jr->set_config("horizon_seconds", probe.horizon_seconds);
    jr->set_config("announce_per_hour", probe.announce_per_hour);
    jr->set_config("probe_rate_per_second", probe.probe_rate_per_second);
  }

  struct CellRow {
    std::size_t targets = 0;
    double rate = 0.0;
    fleet::FleetResult result;
  };
  std::vector<CellRow> cells;

  for (const double rate : rates) {
    for (const std::size_t size : sizes) {
      const fleet::FleetConfig cfg = cell_config(size, rate);
      const std::string label = "fleet " + std::to_string(size) +
                                " targets @" + util::fixed(rate, 0) + "/h";
      fleet::FleetScheduler scheduler(cfg);
      const auto wall_start = std::chrono::steady_clock::now();
      CellRow cell;
      cell.targets = size;
      cell.rate = rate;
      {
        bench::WallClock wc(label, cfg.shards,
                            cfg.threads ? cfg.threads
                                        : util::default_thread_count());
        cell.result = scheduler.run();
      }
      const double wall = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();
      // Wall-clock throughput is hardware-dependent: stderr only.
      std::fprintf(stderr, "[%s] %.1f episodes/sec wall-clock\n",
                   label.c_str(),
                   wall > 0.0
                       ? static_cast<double>(cell.result.episodes_closed()) /
                             wall
                       : 0.0);
      cells.push_back(std::move(cell));
    }
  }

  bench::section("Episode throughput and remediation latency");
  std::printf(
      "  %-8s %-8s %-9s %-8s %-8s %-10s %-9s %-9s %-9s %-9s\n", "targets",
      "out/h", "episodes", "closed", "remed", "eps/simh", "t_rem p50",
      "t_rem p90", "defer_pr", "defer_an");
  for (const CellRow& cell : cells) {
    const auto lat = cell.result.remediate_latencies();
    std::printf(
        "  %-8zu %-8.0f %-9zu %-8zu %-8zu %-10.1f %-9s %-9s %-9llu %-9llu\n",
        cell.targets, cell.rate, cell.result.episodes_opened(),
        cell.result.episodes_closed(),
        cell.result.outcome_count(fleet::EpisodeOutcome::kRemediated),
        cell.result.episodes_per_sim_hour(),
        lat.empty() ? "n/a" : (util::fixed(quantile(lat, 0.5), 0) + " s").c_str(),
        lat.empty() ? "n/a" : (util::fixed(quantile(lat, 0.9), 0) + " s").c_str(),
        static_cast<unsigned long long>(cell.result.probe_deferred()),
        static_cast<unsigned long long>(cell.result.announce_denied()));
  }

  bench::section("Announcement-budget utilization (hard cap: 1.0)");
  std::printf("  %-8s %-8s %-12s %-12s %-12s %-10s\n", "targets", "out/h",
              "spent", "capacity", "utilization", "respected");
  bool util_in_bounds = true;
  for (const CellRow& cell : cells) {
    const double cap = cell.result.announce_capacity();
    const double util =
        cap > 0.0 ? cell.result.announce_spent() / cap : 0.0;
    // Regression surface for the utilization > 1.0 bug: no drain phase or
    // horizon undershoot may ever push reported utilization out of [0, 1].
    util_in_bounds = util_in_bounds && util >= 0.0 && util <= 1.0;
    std::printf("  %-8zu %-8.0f %-12.1f %-12.1f %-12.3f %-10s\n", cell.targets,
                cell.rate, cell.result.announce_spent(), cap, util,
                cell.result.budget_respected() ? "yes" : "NO");
  }

  bench::section("Outcome mix (largest cell, high outage rate)");
  const CellRow& big = cells.back();
  {
    using O = fleet::EpisodeOutcome;
    for (const O o : {O::kResolvedSelf, O::kNoBlame, O::kDeclined,
                      O::kRemediated, O::kVerifyTimeout}) {
      bench::kv(fleet::episode_outcome_name(o),
                std::to_string(big.result.outcome_count(o)));
    }
    bench::kv("flap re-entries", std::to_string(big.result.flap_reentries()));
    bench::kv("open at end (must be 0)",
              std::to_string([&] {
                std::size_t n = 0;
                for (const auto& s : big.result.shards) n += s.open_at_end;
                return n;
              }()));
  }

  bench::section("Time-to-remediate CDF (largest cell, high outage rate)");
  {
    const auto lat = big.result.remediate_latencies();
    if (lat.empty()) {
      std::printf("  (no remediated episodes)\n");
    } else {
      for (const double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 1.00}) {
        std::printf("  p%-4.0f %8.0f s\n", q * 100.0, quantile(lat, q));
      }
    }
  }

  bool all_respected = true;
  for (const CellRow& cell : cells) {
    all_respected = all_respected && cell.result.budget_respected();
    const std::string suffix =
        std::to_string(cell.targets) + "_r" + util::fixed(cell.rate, 0);
    const auto lat = cell.result.remediate_latencies();
    jr->headline("episodes_opened_" + suffix,
                 static_cast<double>(cell.result.episodes_opened()));
    jr->headline("episodes_per_sim_hour_" + suffix,
                 cell.result.episodes_per_sim_hour());
    if (!lat.empty()) {
      jr->headline("remediate_p50_s_" + suffix, quantile(lat, 0.5));
      jr->headline("remediate_p90_s_" + suffix, quantile(lat, 0.9));
    }
    const double cap = cell.result.announce_capacity();
    jr->headline("announce_utilization_" + suffix,
                 cap > 0.0 ? cell.result.announce_spent() / cap : 0.0);
  }
  jr->headline("budget_respected_all_cells", all_respected ? 1.0 : 0.0);
  jr->headline("utilization_in_bounds", util_in_bounds ? 1.0 : 0.0);
  if (!util_in_bounds) {
    std::printf("\n  ERROR: announcement utilization outside [0, 1]\n");
    return 1;
  }
  // Stall-watchdog verdict across every cell (lg.fleet.stalled aggregates in
  // the global registry as shards merge). Expected 0 on a healthy plane; a
  // nonzero value names episodes parked past LG_FLEET_STALL_SECONDS.
  jr->headline(
      "episodes_stalled",
      static_cast<double>(
          obs::MetricsRegistry::global().counter("lg.fleet.stalled").value()));
  if (!all_respected) {
    std::printf("\n  ERROR: a shard exceeded its announcement budget cap\n");
    return 1;
  }
  return 0;
}
