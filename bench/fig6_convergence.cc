// Figure 6 reproduction — convergence after poisoned announcements, split by
// (prepend vs no-prepend baseline) x (peer had to change paths vs not).
//
// Paper: with the O-O-O baseline, >95% of unaffected peers converge
// instantly (97% with a single update) and 99% within 50 s; without
// prepending only ~70% converge instantly (64% single-update). Affected
// peers: 96% within 50 s (prepend) vs 86% (no prepend). Global convergence:
// medians 91 s vs 133 s, 90th percentiles 200 s vs 226 s.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "run/trial_runner.h"
#include "util/stats.h"
#include "workload/poison_experiment.h"
#include "workload/sim_world.h"

using namespace lg;
using topo::AsId;

namespace {

struct Series {
  util::EmpiricalCdf convergence;   // seconds per peer
  std::size_t peers = 0;
  std::size_t instant = 0;          // convergence == 0 (single update)
  std::size_t single_update = 0;
};

struct RunResult {
  Series changed;    // peers that had been routing via the poisoned AS
  Series unchanged;  // everyone else
  util::EmpiricalCdf global_convergence;
};

RunResult run_cell(std::size_t prepend, std::uint64_t seed, double mrai = 30.0) {
  workload::SimWorld world([&] {
    auto cfg = workload::SimWorldConfig{};
    cfg.topology.seed = seed;
    cfg.engine.seed = seed + 1;
    cfg.engine.default_mrai = mrai;
    return cfg;
  }());
  AsId origin = topo::kInvalidAs;
  for (const AsId as : world.topology().stubs) {
    if (world.graph().providers(as).size() >= 2) {
      origin = as;
      break;
    }
  }
  workload::PoisonExperimentConfig cfg;
  cfg.baseline_prepend = prepend;
  workload::PoisonExperiment experiment(world, origin, cfg);
  experiment.setup();
  const auto feeds = world.feed_ases(40);
  const auto candidates = experiment.harvest_poison_candidates(feeds);

  RunResult result;
  std::size_t n = 0;
  for (const AsId target : candidates) {
    if (n++ >= 30) break;
    const auto outcome = experiment.poison_and_measure(target, feeds);
    for (const auto& peer : outcome.peers) {
      if (peer.update_count == 0) continue;
      Series& series =
          peer.routed_via_poisoned_before ? result.changed : result.unchanged;
      ++series.peers;
      series.convergence.add(peer.convergence_seconds);
      if (peer.convergence_seconds == 0.0) ++series.instant;
      if (peer.update_count == 1) ++series.single_update;
    }
    result.global_convergence.add(outcome.global_convergence_seconds);
  }
  return result;
}

void print_series(const char* name, const Series& s) {
  if (s.peers == 0) {
    std::printf("  %-28s (no samples)\n", name);
    return;
  }
  std::printf("  %-28s n=%-6zu instant=%-7s 1-update=%-7s p50=%-7.1fs "
              "p95=%-7.1fs p99=%-7.1fs\n",
              name, s.peers,
              util::pct(static_cast<double>(s.instant) /
                        static_cast<double>(s.peers))
                  .c_str(),
              util::pct(static_cast<double>(s.single_update) /
                        static_cast<double>(s.peers))
                  .c_str(),
              s.convergence.quantile(0.5), s.convergence.quantile(0.95),
              s.convergence.quantile(0.99));
}

}  // namespace

int main() {
  bench::header("Figure 6 / Table 1 'Disruptiveness'",
                "Peer convergence time after poisoned announcements");
  bench::JsonReport jr("fig6_convergence");
  jr->set_config("seed", 42.0);
  jr->set_config("poisonings_per_run", 30.0);
  jr->set_config("feed_ases", 40.0);

  // One trial per (prepend, MRAI) cell on lg::run::TrialRunner. Every cell
  // keeps the fixed seed 42 the serial harness used, so the numbers are
  // unchanged; the runner only buys wall-clock and per-trial metric sinks.
  struct Cell {
    std::size_t prepend;
    double mrai;
  };
  const std::vector<Cell> cells = {
      {3, 30.0}, {1, 30.0}, {1, 5.0}, {1, 30.0}, {1, 60.0}};
  run::TrialRunner runner;
  std::vector<RunResult> results;
  {
    bench::WallClock wc("fig6_convergence", cells.size(), runner.threads());
    results = runner.run(cells.size(), [&](run::TrialContext& ctx) {
      return run_cell(cells[ctx.index].prepend, 42, cells[ctx.index].mrai);
    });
  }
  const auto& prep = results[0];
  const auto& noprep = results[1];

  bench::section("Per-peer convergence (seconds)");
  print_series("Prepend, no change", prep.unchanged);
  print_series("No prepend, no change", noprep.unchanged);
  print_series("Prepend, change", prep.changed);
  print_series("No prepend, change", noprep.changed);

  bench::section("Paper anchors");
  auto frac_within = [](const Series& s, double secs) {
    return s.peers ? util::pct(s.convergence.cdf(secs)) : std::string("n/a");
  };
  bench::compare_row("unaffected peers converging instantly (prepend)",
                     ">95%",
                     prep.unchanged.peers
                         ? util::pct(static_cast<double>(prep.unchanged.instant) /
                                     static_cast<double>(prep.unchanged.peers))
                         : "n/a");
  bench::compare_row("unaffected peers converging instantly (no prepend)",
                     "<70%",
                     noprep.unchanged.peers
                         ? util::pct(static_cast<double>(noprep.unchanged.instant) /
                                     static_cast<double>(noprep.unchanged.peers))
                         : "n/a");
  bench::compare_row("unaffected single-update (prepend)", "97%",
                     prep.unchanged.peers
                         ? util::pct(static_cast<double>(prep.unchanged.single_update) /
                                     static_cast<double>(prep.unchanged.peers))
                         : "n/a");
  bench::compare_row("unaffected single-update (no prepend)", "64%",
                     noprep.unchanged.peers
                         ? util::pct(static_cast<double>(noprep.unchanged.single_update) /
                                     static_cast<double>(noprep.unchanged.peers))
                         : "n/a");
  bench::compare_row("affected peers converged within 50 s (prepend)", "96%",
                     frac_within(prep.changed, 50.0));
  bench::compare_row("affected peers converged within 50 s (no prepend)",
                     "86%", frac_within(noprep.changed, 50.0));

  bench::section("Global convergence (first update to last, per poisoning)");
  bench::compare_row("median (prepend)", "<=91 s",
                     util::fixed(prep.global_convergence.quantile(0.5), 0) + " s");
  bench::compare_row("75th pct (prepend)", "<=120 s",
                     util::fixed(prep.global_convergence.quantile(0.75), 0) + " s");
  bench::compare_row("90th pct (prepend)", "<=200 s",
                     util::fixed(prep.global_convergence.quantile(0.9), 0) + " s");
  bench::compare_row("median (no prepend)", "133 s",
                     util::fixed(noprep.global_convergence.quantile(0.5), 0) + " s");
  bench::compare_row("90th pct (no prepend)", "226 s",
                     util::fixed(noprep.global_convergence.quantile(0.9), 0) + " s");

  jr->headline("global_convergence_p50_prepend_s",
               prep.global_convergence.quantile(0.5));
  jr->headline("global_convergence_p90_prepend_s",
               prep.global_convergence.quantile(0.9));
  jr->headline("global_convergence_p50_noprepend_s",
               noprep.global_convergence.quantile(0.5));
  jr->headline("global_convergence_p90_noprepend_s",
               noprep.global_convergence.quantile(0.9));
  if (prep.unchanged.peers) {
    jr->headline("unaffected_instant_frac_prepend",
                 static_cast<double>(prep.unchanged.instant) /
                     static_cast<double>(prep.unchanged.peers));
  }
  if (noprep.unchanged.peers) {
    jr->headline("unaffected_instant_frac_noprepend",
                 static_cast<double>(noprep.unchanged.instant) /
                     static_cast<double>(noprep.unchanged.peers));
  }

  // Ablation: MRAI drives the convergence timescale (DESIGN.md decision 1).
  // Path exploration without prepending is paced by the per-session
  // advertisement interval; shrinking it compresses convergence, growing it
  // stretches it — absolute numbers in this repo scale with this knob.
  bench::section("Ablation: MRAI sweep (no-prepend runs)");
  for (std::size_t i = 2; i < cells.size(); ++i) {
    const double mrai = cells[i].mrai;
    const auto& ablation = results[i];
    std::printf("  MRAI=%4.0fs  global convergence p50=%6.1fs p90=%6.1fs  "
                "unaffected single-update=%s\n",
                mrai, ablation.global_convergence.quantile(0.5),
                ablation.global_convergence.quantile(0.9),
                ablation.unchanged.peers
                    ? util::pct(static_cast<double>(
                                    ablation.unchanged.single_update) /
                                static_cast<double>(ablation.unchanged.peers))
                          .c_str()
                    : "n/a");
  }
  return 0;
}
