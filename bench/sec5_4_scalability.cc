// §5.4 reproduction — measurement overhead:
//  * probes per isolated outage (paper: ~280),
//  * isolation latency for reverse/bidirectional outages (paper: 140 s mean),
//  * atlas refresh cost: ~10 amortized IP-option probes + ~2 traceroutes per
//    reverse path, giving 225 paths/min average (502 peak) at the
//    deployment's probing capacity.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/isolation.h"
#include "util/stats.h"
#include "workload/scenarios.h"
#include "workload/sim_world.h"

using namespace lg;
using core::FailureDirection;
using topo::AsId;

int main() {
  bench::header("Section 5.4 / Table 1 'Scalability'",
                "Probe and latency cost of isolation and atlas refresh");
  bench::JsonReport jr("sec5_4_scalability");
  jr->set_config("vantage_points", 12.0);
  jr->set_config("max_isolations", 40.0);

  workload::SimWorld world;
  const auto vp_ases = world.stub_vantage_ases(12);
  for (const AsId as : vp_ases) world.announce_production(as);
  world.converge();

  const auto vp = measure::VantagePoint::in_as(vp_ases[0]);
  std::vector<measure::VantagePoint> helpers;
  std::vector<AsId> witnesses;
  for (std::size_t i = 1; i < vp_ases.size(); ++i) {
    helpers.push_back(measure::VantagePoint::in_as(vp_ases[i]));
    witnesses.push_back(vp_ases[i]);
  }

  // ---------------- atlas refresh cost ----------------
  bench::section("Path atlas refresh");
  core::PathAtlas atlas;
  world.prober().budget().reset();
  std::size_t refreshed_paths = 0;
  std::size_t reverse_paths = 0;
  for (const AsId target_as : world.stub_vantage_ases(60)) {
    if (target_as == vp.as) continue;
    const auto target =
        topo::AddressPlan::router_address(topo::RouterId{target_as, 0});
    refreshed_paths += static_cast<std::size_t>(
        atlas.refresh(world.prober(), vp, target, 0.0));
    if (atlas.latest_reverse(vp, target) != nullptr) ++reverse_paths;
  }
  const auto& budget = world.prober().budget();
  const double per_path_options =
      reverse_paths ? static_cast<double>(budget.option_probes) /
                          static_cast<double>(reverse_paths)
                    : 0.0;
  const double per_path_total =
      refreshed_paths ? static_cast<double>(budget.total()) /
                            static_cast<double>(refreshed_paths)
                      : 0.0;
  bench::kv("paths refreshed", std::to_string(refreshed_paths));
  bench::compare_row("amortized IP-option probes per reverse path",
                     "10 (vs 35 in [19])", util::fixed(per_path_options, 1));
  bench::kv("total probes per refreshed path (all kinds)",
            util::fixed(per_path_total, 1));
  // The deployment sustained ~5600 probes/min; at our measured per-path
  // cost that capacity yields the refresh rate below.
  const double deployment_probes_per_min = 5600.0;
  bench::compare_row(
      "refresh rate at deployment probing capacity", "225/min (502 peak)",
      util::fixed(deployment_probes_per_min / per_path_total, 0) + "/min");

  // ---------------- isolation cost ----------------
  bench::section("Isolation cost (reverse + bidirectional candidates)");
  workload::ScenarioGenerator gen(world, 4242);
  util::Summary probes_per_outage;
  util::Summary seconds_per_outage;
  std::size_t isolations = 0;
  core::IsolationEngine engine(world.prober(), atlas);
  for (const AsId target_as : world.topology().stubs) {
    if (isolations >= 40) break;
    if (target_as == vp.as) continue;
    auto scenario = gen.make(vp.as, target_as, FailureDirection::kReverse,
                             false, witnesses);
    if (!scenario) continue;
    const auto failure_ids = scenario->failure_ids;
    scenario->failure_ids.clear();
    for (const auto id : failure_ids) world.failures().clear(id);
    atlas.refresh(world.prober(), vp, scenario->target, 0.0);
    scenario->failure_ids.push_back(world.failures().inject(dp::Failure{
        .at_as = scenario->culprit_as, .toward_as = vp.as}));

    const auto result = engine.isolate(vp, scenario->target, helpers);
    ++isolations;
    probes_per_outage.add(static_cast<double>(result.probes_used));
    seconds_per_outage.add(result.modeled_seconds);
    gen.repair(*scenario);
  }
  bench::kv("isolated outages", std::to_string(isolations));
  bench::compare_row("probe packets per isolated outage", "~280",
                     util::fixed(probes_per_outage.mean(), 0));
  bench::compare_row("isolation latency (reverse outages, mean)", "140 s",
                     util::fixed(seconds_per_outage.mean(), 0) + " s");
  bench::kv("isolation latency min/max",
            util::fixed(seconds_per_outage.min(), 0) + " s / " +
                util::fixed(seconds_per_outage.max(), 0) + " s");

  // ---------------- convergence scalability (frontier pump) ----------------
  // Growing worlds, ~20 stub origins announcing at t=0 so every delivery
  // quantum carries work for many receivers. Simulation results (messages,
  // convergence sim-time) are deterministic and land in stdout + JSON;
  // wall-clock — the only thing LG_WORLD_THREADS may change — goes to stderr
  // only, so this report stays byte-diffable across thread counts (the CI
  // determinism gate relies on that).
  bench::section("Convergence scalability (frontier pump)");
  const std::size_t world_threads = bgp::BgpEngine::world_threads_from_env();
  for (const std::uint32_t stubs : {150u, 400u, 800u}) {
    workload::SimWorldConfig cfg;
    cfg.topology.num_stubs = stubs;
    cfg.topology.seed = 5400 + stubs;
    cfg.engine.seed = 5400 + stubs;
    cfg.announce_infrastructure = false;
    workload::SimWorld w(cfg);
    const auto& all_stubs = w.topology().stubs;
    const std::size_t stride = all_stubs.size() / 20;
    for (std::size_t i = 0; i < 20; ++i) {
      const AsId origin = all_stubs[i * stride];
      bgp::OriginPolicy policy;
      policy.default_path = bgp::AsPath{origin};
      w.engine().originate(
          origin, topo::AddressPlan::production_prefix(origin), policy);
    }
    const auto wall_start = std::chrono::steady_clock::now();
    w.converge();
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();
    const std::string cell = "stubs=" + std::to_string(stubs);
    bench::kv(cell + " converge",
              std::to_string(w.graph().num_ases()) + " ases, " +
                  std::to_string(w.engine().total_messages()) +
                  " updates, quiesced at t=" +
                  util::fixed(w.engine().last_activity_time(), 1) + " s");
    jr->headline("convergence_updates_" + cell,
                 static_cast<double>(w.engine().total_messages()));
    jr->headline("convergence_simtime_s_" + cell,
                 w.engine().last_activity_time());
    std::fprintf(stderr,
                 "[sec5_4] %s world_threads=%zu converge wall=%.2f s\n",
                 cell.c_str(), world_threads, wall_s);
  }

  jr->headline("amortized_option_probes_per_reverse_path", per_path_options);
  jr->headline("total_probes_per_refreshed_path", per_path_total);
  jr->headline("probes_per_isolated_outage", probes_per_outage.mean());
  jr->headline("isolation_latency_mean_s", seconds_per_outage.mean());
  return 0;
}
