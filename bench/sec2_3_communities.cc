// §2.3 reproduction — why BGP communities cannot implement
// AVOID_PROBLEM(X, P): "many ASes do not propagate community values they
// receive, and so communities are not a feasible way to notify arbitrary
// ASes of routing problems. We announced experimental prefixes with
// communities attached and found that, for example, any AS that used a
// Tier-1 to reach our prefixes did not have the communities on our
// announcements."
//
// We announce a prefix with a community attached while tier-1 networks (and
// a configurable fraction of other transits) strip communities, then measure
// which ASes still see the tag.
#include <cstdio>

#include "bench/bench_util.h"
#include "workload/sim_world.h"

using namespace lg;
using topo::AsId;

namespace {

struct Visibility {
  std::size_t with_route = 0;
  std::size_t with_community = 0;
  std::size_t via_tier1_with_community = 0;
  std::size_t via_tier1 = 0;
};

Visibility measure_visibility(workload::SimWorld& world, AsId origin,
                   const topo::Prefix& prefix, bgp::Community tag) {
  Visibility v;
  for (const AsId as : world.graph().as_ids()) {
    if (as == origin) continue;
    const auto* route = world.engine().best_route(as, prefix);
    if (route == nullptr) continue;
    ++v.with_route;
    bool via_t1 = false;
    for (const AsId hop : route->path) {
      if (hop == origin) break;
      if (world.graph().tier(hop) == topo::AsTier::kTier1) {
        via_t1 = true;
        break;
      }
    }
    const bool tagged =
        std::find(route->communities.begin(), route->communities.end(),
                  tag) != route->communities.end();
    if (via_t1) ++v.via_tier1;
    if (tagged) {
      ++v.with_community;
      if (via_t1) ++v.via_tier1_with_community;
    }
  }
  return v;
}

}  // namespace

int main() {
  bench::header("Section 2.3 'BGP communities'",
                "Do community-tagged announcements reach arbitrary ASes?");
  bench::JsonReport jr("sec2_3_communities");
  jr->set_config("transit_strip_fraction", 1.0 / 3.0);

  workload::SimWorld world;
  const AsId origin = world.topology().stubs.front();
  constexpr bgp::Community kAvoidTag = 0xFFFF'0001;

  const auto prefix = topo::AddressPlan::production_prefix(origin);
  const auto announce = [&] {
    bgp::OriginPolicy policy;
    policy.default_path = bgp::AsPath{origin};
    policy.communities = {kAvoidTag};
    world.engine().originate(origin, prefix, policy);
    world.converge();
  };

  // Pass 1: nobody strips — the hypothetical clean world.
  announce();
  const auto clean = measure_visibility(world, origin, prefix, kAvoidTag);

  // Pass 2: tier-1s strip (the paper's observation) and a third of other
  // transits never propagate communities either [30].
  for (const AsId as : world.topology().tier1) {
    world.engine().speaker(as).mutable_config().strips_communities = true;
  }
  std::size_t i = 0;
  for (const AsId as : world.topology().transit()) {
    if (++i % 3 == 0) {
      world.engine().speaker(as).mutable_config().strips_communities = true;
    }
  }
  // Force re-propagation by withdrawing and re-announcing.
  world.engine().withdraw(origin, prefix);
  world.converge();
  announce();
  const auto real = measure_visibility(world, origin, prefix, kAvoidTag);

  bench::section("Without stripping (hypothetical)");
  bench::kv("ASes with a route", std::to_string(clean.with_route));
  bench::kv("...that still carry the community",
            util::pct(static_cast<double>(clean.with_community) /
                      static_cast<double>(clean.with_route)));

  bench::section("With tier-1s (and 1/3 of transits) stripping");
  bench::kv("ASes with a route", std::to_string(real.with_route));
  bench::compare_row("ASes still carrying the community", "far from all",
                     util::pct(static_cast<double>(real.with_community) /
                               static_cast<double>(real.with_route)));
  bench::compare_row(
      "ASes routing via a tier-1 that kept the community", "0%",
      real.via_tier1
          ? util::pct(static_cast<double>(real.via_tier1_with_community) /
                      static_cast<double>(real.via_tier1))
          : "n/a");
  bench::kv("ASes routing via a tier-1", std::to_string(real.via_tier1));

  if (clean.with_route) {
    jr->headline("frac_tagged_no_stripping",
                 static_cast<double>(clean.with_community) /
                     static_cast<double>(clean.with_route));
  }
  if (real.with_route) {
    jr->headline("frac_tagged_with_stripping",
                 static_cast<double>(real.with_community) /
                     static_cast<double>(real.with_route));
  }
  if (real.via_tier1) {
    jr->headline("frac_via_tier1_keeping_tag",
                 static_cast<double>(real.via_tier1_with_community) /
                     static_cast<double>(real.via_tier1));
  }

  bench::section("Conclusion (as in the paper)");
  std::printf(
      "  Communities reach only the neighborhood that happens to preserve\n"
      "  them; they cannot notify arbitrary ASes, so LIFEGUARD needs the\n"
      "  loop-prevention mechanism (poisoning) instead.\n");
  return 0;
}
