// Microbenchmarks (google-benchmark) for the substrate hot paths: BGP
// origination+convergence, FIB lookups, data-plane forwarding, valley-free
// reachability queries, probe execution, and the RNG/stats plumbing.
//
// A custom reporter captures per-benchmark wall-clock timings and writes
// them into BENCH_micro_perf.json, making this harness the perf baseline
// that later PRs diff against. Run with LG_METRICS=off to measure the cost
// of the disabled-instrumentation branch.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/remediation.h"
#include "mem/rss.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "topology/valley_free.h"
#include "workload/outages.h"
#include "workload/sim_world.h"

namespace {

using namespace lg;
using topo::AsId;

workload::SimWorld& shared_world() {
  static workload::SimWorld world(workload::SimWorld::small_config(7));
  return world;
}

void BM_TopologyGenerate(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    topo::TopologyParams params;
    params.num_stubs = static_cast<std::uint32_t>(state.range(0));
    params.seed = seed++;
    benchmark::DoNotOptimize(topo::generate_topology(params));
  }
}
BENCHMARK(BM_TopologyGenerate)->Arg(200)->Arg(600);

void BM_BgpOriginateAndConverge(benchmark::State& state) {
  auto& world = shared_world();
  const AsId origin = world.topology().stubs.front();
  const auto prefix = topo::AddressPlan::production_prefix(origin);
  for (auto _ : state) {
    bgp::OriginPolicy policy;
    policy.default_path = bgp::AsPath{origin};
    world.engine().originate(origin, prefix, policy);
    world.converge();
    world.engine().withdraw(origin, prefix);
    world.converge();
  }
}
BENCHMARK(BM_BgpOriginateAndConverge);

// Frontier-pump throughput at 1/2/4 world-threads: a 300-stub topology with
// eight stub origins announcing (then withdrawing) simultaneously, so every
// delivery quantum carries updates for many receivers and phase 1 of the
// pump has real work to fan out. One cached world per thread count — the
// convergence outcome is identical across them by the determinism contract,
// only the wall-clock should differ.
lg::workload::SimWorld& pump_world(std::size_t world_threads) {
  static std::unordered_map<std::size_t,
                            std::unique_ptr<lg::workload::SimWorld>>
      worlds;
  auto& slot = worlds[world_threads];
  if (!slot) {
    lg::workload::SimWorldConfig cfg;
    cfg.topology.num_stubs = 300;
    cfg.topology.seed = 21;
    cfg.engine.seed = 21;
    cfg.engine.world_threads = world_threads;
    cfg.announce_infrastructure = false;
    slot = std::make_unique<lg::workload::SimWorld>(cfg);
  }
  return *slot;
}

void BM_FrontierPump(benchmark::State& state) {
  auto& world = pump_world(static_cast<std::size_t>(state.range(0)));
  const auto& stubs = world.topology().stubs;
  const std::size_t stride = stubs.size() / 8;
  std::vector<std::pair<AsId, topo::Prefix>> origins;
  for (std::size_t i = 0; i < 8; ++i) {
    const AsId as = stubs[i * stride];
    origins.emplace_back(as, topo::AddressPlan::production_prefix(as));
  }
  for (auto _ : state) {
    for (const auto& [as, prefix] : origins) {
      bgp::OriginPolicy policy;
      policy.default_path = bgp::AsPath{as};
      world.engine().originate(as, prefix, policy);
    }
    world.converge();
    for (const auto& [as, prefix] : origins) {
      world.engine().withdraw(as, prefix);
    }
    world.converge();
  }
  state.counters["world_threads"] =
      static_cast<double>(world.engine().world_threads());
}
BENCHMARK(BM_FrontierPump)->Arg(1)->Arg(2)->Arg(4);

// Per-frontier fixed overhead (bucket bookkeeping, receiver grouping, merge
// ordering) rather than decision throughput: a single origin flapping on the
// same 300-stub world, so most frontiers carry only a handful of messages
// and the pump's bookkeeping dominates. Single-threaded by construction —
// this is the cost floor the old event-at-a-time loop did not pay.
void BM_FrontierMerge(benchmark::State& state) {
  auto& world = pump_world(1);
  const AsId origin = world.topology().stubs.front();
  const auto prefix = topo::AddressPlan::production_prefix(origin);
  for (auto _ : state) {
    bgp::OriginPolicy policy;
    policy.default_path = bgp::AsPath{origin};
    world.engine().originate(origin, prefix, policy);
    world.converge();
    world.engine().withdraw(origin, prefix);
    world.converge();
  }
}
BENCHMARK(BM_FrontierMerge);

void BM_PoisonAndConverge(benchmark::State& state) {
  auto& world = shared_world();
  AsId origin = topo::kInvalidAs;
  for (const AsId as : world.topology().stubs) {
    if (world.graph().providers(as).size() >= 2) {
      origin = as;
      break;
    }
  }
  core::Remediator remediator(world.engine(), origin);
  remediator.announce_baseline();
  world.converge();
  const AsId victim = world.feed_ases(1).front();
  for (auto _ : state) {
    remediator.poison(victim);
    world.converge();
    remediator.unpoison();
    world.converge();
  }
}
BENCHMARK(BM_PoisonAndConverge);

void BM_FibLookup(benchmark::State& state) {
  auto& world = shared_world();
  const AsId as = world.topology().stubs.front();
  const auto addr = topo::AddressPlan::router_address(
      topo::RouterId{world.topology().tier1.front(), 0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.engine().fib_lookup(as, addr));
  }
}
BENCHMARK(BM_FibLookup);

void BM_DataPlaneForward(benchmark::State& state) {
  auto& world = shared_world();
  const AsId src = world.topology().stubs.front();
  const AsId dst = world.topology().stubs.back();
  const auto addr =
      topo::AddressPlan::router_address(topo::RouterId{dst, 0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.dataplane().forward(src, addr));
  }
}
BENCHMARK(BM_DataPlaneForward);

void BM_Ping(benchmark::State& state) {
  auto& world = shared_world();
  static bool announced = [] {
    auto& w = shared_world();
    w.announce_production(w.topology().stubs.front());
    w.converge();
    return true;
  }();
  (void)announced;
  const AsId src = world.topology().stubs.front();
  const auto vp_addr = topo::AddressPlan::production_host(src);
  const auto target = topo::AddressPlan::router_address(
      topo::RouterId{world.topology().stubs.back(), 0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.prober().ping(src, target, vp_addr));
  }
}
BENCHMARK(BM_Ping);

void BM_ValleyFreeReachability(benchmark::State& state) {
  auto& world = shared_world();
  const topo::ValleyFreeOracle oracle(world.graph());
  const AsId src = world.topology().stubs.front();
  const AsId dst = world.topology().stubs.back();
  const auto avoid =
      topo::Avoidance::of_as(world.topology().large_transit.front());
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.reachable(src, dst, avoid));
  }
}
BENCHMARK(BM_ValleyFreeReachability);

// Single-speaker hot paths, isolated from the scheduler: one transit AS
// with two customer neighbors alternately announcing the same prefix. The
// Arg is the topology's stub count (neighbor fan-out grows with it), at the
// usual small scale and the 600-stub scale of the scaling experiments.
struct SpeakerFixture {
  topo::GeneratedTopology topo;
  AsId as = topo::kInvalidAs;
  AsId cust1 = topo::kInvalidAs;
  AsId cust2 = topo::kInvalidAs;
  AsId origin = topo::kInvalidAs;
  topo::Prefix prefix;

  explicit SpeakerFixture(std::uint32_t stubs) {
    topo::TopologyParams params;
    params.num_stubs = stubs;
    params.seed = 11;
    topo = topo::generate_topology(params);
    for (const AsId cand : topo.small_transit) {
      std::vector<AsId> customers;
      for (const auto& n : topo.graph.neighbors(cand)) {
        if (n.rel == topo::Rel::kCustomer) customers.push_back(n.id);
      }
      if (customers.size() >= 2) {
        as = cand;
        cust1 = customers[0];
        cust2 = customers[1];
        break;
      }
    }
    origin = topo.stubs.front();
    prefix = topo::AddressPlan::production_prefix(origin);
  }

  bgp::UpdateMessage announce(AsId from, bgp::AsPath path) const {
    bgp::UpdateMessage msg;
    msg.type = bgp::MsgType::kAnnounce;
    msg.from = from;
    msg.to = as;
    msg.prefix = prefix;
    msg.path = bgp::PathRef(std::move(path));
    return msg;
  }
};

void BM_ProcessUpdate(benchmark::State& state) {
  const SpeakerFixture fx(static_cast<std::uint32_t>(state.range(0)));
  bgp::BgpSpeaker speaker(fx.as, fx.topo.graph);
  const auto m1 = fx.announce(fx.cust1, {fx.cust1, fx.origin});
  const auto m2 = fx.announce(fx.cust2, {fx.cust2, fx.origin, fx.origin});
  bool flip = false;
  double now = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(speaker.process_update(flip ? m2 : m1, now));
    flip = !flip;
    now += 0.001;
  }
}
BENCHMARK(BM_ProcessUpdate)->Arg(200)->Arg(600);

void BM_ExportPath(benchmark::State& state) {
  const SpeakerFixture fx(static_cast<std::uint32_t>(state.range(0)));
  bgp::BgpSpeaker speaker(fx.as, fx.topo.graph);
  // Customer-learned best route: exportable to every neighbor, and cust2 is
  // not the next hop, so split horizon does not bite.
  speaker.process_update(fx.announce(fx.cust1, {fx.cust1, fx.origin}), 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(speaker.export_path(fx.prefix, fx.cust2));
  }
}
BENCHMARK(BM_ExportPath)->Arg(200)->Arg(600);

// Full-graph convergence on the internet-scale synthetic: one prefix
// originated at a stub, scheduler drained, fresh engine per iteration. The
// Arg is total ASes; counters carry the structural memory accounting so the
// bytes/route trajectory lands in BENCH_micro_perf.json alongside the
// timing.
void BM_FullGraphConverge(benchmark::State& state) {
  topo::InternetScaleParams params;
  params.total_ases = static_cast<std::uint32_t>(state.range(0));
  params.seed = 17;
  const auto topo = topo::generate_internet_scale(params);
  const AsId origin = topo.stubs.front();
  const auto prefix = topo::AddressPlan::production_prefix(origin);
  double bytes_per_route = 0.0;
  double routes = 0.0;
  for (auto _ : state) {
    util::Scheduler sched;
    bgp::BgpEngine engine(topo.graph, sched);
    bgp::OriginPolicy policy;
    policy.default_path = bgp::AsPath{origin};
    engine.originate(origin, prefix, policy);
    sched.run();
    const auto mem = engine.rib_memory();
    routes = static_cast<double>(mem.routes);
    bytes_per_route = mem.routes == 0
                          ? 0.0
                          : static_cast<double>(mem.bytes) /
                                static_cast<double>(mem.routes);
    benchmark::DoNotOptimize(mem.bytes);
  }
  state.counters["ases"] = static_cast<double>(state.range(0));
  state.counters["routes"] = routes;
  state.counters["bytes_per_route"] = bytes_per_route;
  state.counters["peak_rss_mb"] =
      static_cast<double>(mem::peak_rss_bytes()) / (1024.0 * 1024.0);
}
BENCHMARK(BM_FullGraphConverge)
    ->Unit(benchmark::kMillisecond)
    ->Arg(2000)
    ->Arg(10000);

// Cost of the rib_memory() accounting sweep itself over a converged
// full-graph engine (it walks every speaker's containers; the bench gate
// runs it after every convergence, so it must stay cheap).
void BM_RibMemory(benchmark::State& state) {
  topo::InternetScaleParams params;
  params.total_ases = static_cast<std::uint32_t>(state.range(0));
  params.seed = 17;
  const auto topo = topo::generate_internet_scale(params);
  util::Scheduler sched;
  bgp::BgpEngine engine(topo.graph, sched);
  const AsId origin = topo.stubs.front();
  bgp::OriginPolicy policy;
  policy.default_path = bgp::AsPath{origin};
  engine.originate(origin, topo::AddressPlan::production_prefix(origin),
                   policy);
  sched.run();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.rib_memory().bytes);
  }
  const auto mem = engine.rib_memory();
  state.counters["routes"] = static_cast<double>(mem.routes);
  state.counters["bytes_per_route"] =
      mem.routes == 0 ? 0.0
                      : static_cast<double>(mem.bytes) /
                            static_cast<double>(mem.routes);
  state.counters["peak_rss_mb"] =
      static_cast<double>(mem::peak_rss_bytes()) / (1024.0 * 1024.0);
}
BENCHMARK(BM_RibMemory)->Unit(benchmark::kMicrosecond)->Arg(2000)->Arg(10000);

// Span begin+end pair against a private registry. Arg(1) is the enabled
// path (id derivation, deque append, index insert, end lookup); Arg(0) is
// the disabled path, which must stay branch-plus-nothing — this is the cost
// every instrumented call site pays when spans are off.
void BM_SpanBeginEnd(benchmark::State& state) {
  obs::SpanRegistry spans;
  spans.set_enabled(state.range(0) != 0);
  spans.set_seed(42);
  double now = 0.0;
  std::uint64_t n = 0;
  for (auto _ : state) {
    const obs::SpanId id = spans.begin(now, "bench.span", 0, 1, 2);
    now += 0.001;
    spans.end(id, now);
    // Bound the deque: the periodic clear is amortized into the timing,
    // which is honest — real runs pay for span storage too.
    if ((++n & 0xFFFF) == 0) spans.clear();
  }
  benchmark::DoNotOptimize(spans.size());
}
BENCHMARK(BM_SpanBeginEnd)->Arg(0)->Arg(1);

// One trace-ring append. Arg(1) exercises the enabled ring-buffer write
// (including wraparound once warm); Arg(0) the disabled early-out branch.
void BM_TraceAppend(benchmark::State& state) {
  obs::TraceRing ring;
  ring.set_capacity(1 << 12);
  ring.set_enabled(state.range(0) != 0);
  double now = 0.0;
  for (auto _ : state) {
    ring.record(now, obs::TraceKind::kProbeIssued, 7, 1234);
    now += 0.001;
  }
  benchmark::DoNotOptimize(ring.size());
}
BENCHMARK(BM_TraceAppend)->Arg(0)->Arg(1);

void BM_OutageStudyGeneration(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        workload::generate_outage_study(10308, {}, seed++));
  }
}
BENCHMARK(BM_OutageStudyGeneration);

// Console output as usual, plus a captured copy of every per-iteration run
// so main() can serialize the timings into the JSON run report.
class JsonCapturingReporter : public benchmark::ConsoleReporter {
 public:
  struct Captured {
    std::string name;
    double real_ns_per_iter = 0.0;
    double cpu_ns_per_iter = 0.0;
    std::uint64_t iterations = 0;
    std::vector<std::pair<std::string, double>> counters;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      Captured c{
          run.benchmark_name(),
          run.real_accumulated_time / iters * 1e9,
          run.cpu_accumulated_time / iters * 1e9,
          static_cast<std::uint64_t>(run.iterations),
          {},
      };
      for (const auto& [key, counter] : run.counters) {
        c.counters.emplace_back(key, static_cast<double>(counter));
      }
      captured_.push_back(std::move(c));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<Captured>& captured() const { return captured_; }

 private:
  std::vector<Captured> captured_;
};

}  // namespace

int main(int argc, char** argv) {
  auto& registry = obs::MetricsRegistry::global();
  registry.set_enabled(true);
  registry.configure_from_env();  // LG_METRICS=off measures the opt-out cost
  registry.reset();
  // Tracing and span capture stay off: per-message ring/deque writes would
  // skew the hot loops. BM_TraceAppend/BM_SpanBeginEnd measure those costs
  // against private instances instead.
  obs::TraceRing::global().set_enabled(false);
  obs::SpanRegistry::global().set_enabled(false);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonCapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  obs::RunReport report("micro_perf");
  report.set_config("metrics_enabled", registry.enabled());
  report.set_config("tracing_enabled", false);
  for (const auto& run : reporter.captured()) {
    report.headline(run.name + ".real_ns_per_iter", run.real_ns_per_iter);
    report.headline(run.name + ".cpu_ns_per_iter", run.cpu_ns_per_iter);
    report.headline(run.name + ".iterations",
                    static_cast<double>(run.iterations));
    for (const auto& [key, value] : run.counters) {
      report.headline(run.name + "." + key, value);
    }
  }
  report.capture_metrics();
  const std::string path = report.default_path();
  if (report.write_file(path)) {
    std::printf("\nJSON report: %s\n", path.c_str());
  } else {
    std::printf("\nJSON report: FAILED to write %s\n", path.c_str());
    return 1;
  }
  return 0;
}
