// Robustness under injected faults — how LIFEGUARD's isolation accuracy and
// repair success hold up while the measurement and control planes degrade.
// The paper evaluates on a clean substrate; this harness sweeps the
// lg::faults intensity knob (BGP session resets, update loss/delay, probe
// loss, vantage-point dropout, plus background churn of unrelated prefixes)
// and runs the full detect -> isolate -> poison -> repair lifecycle at each
// level.
//
// Parallel structure (lg::run::TrialRunner): one trial per
// (intensity, replicate) cell, each with its own SimWorld and its own
// FaultPlane installed via ScopedFaultPlane. Per-trial fault seeds derive
// from the trial seed, so output is bit-identical per seed for any
// LG_THREADS value.
//
// Environment: LG_FAULTS=<intensity> replaces the sweep with that single
// intensity; LG_FAULTS_SEED=<n> rebases every trial's fault seed.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/lifeguard.h"
#include "faults/fault_plane.h"
#include "run/trial_runner.h"
#include "workload/churn.h"
#include "workload/scenarios.h"
#include "workload/sim_world.h"

using namespace lg;
using core::FailureDirection;
using topo::AsId;

namespace {

constexpr std::size_t kTrialsPerIntensity = 4;
constexpr std::size_t kHelpers = 6;
constexpr std::size_t kChurnFlappers = 6;

struct TrialResult {
  bool scenario_found = false;
  bool direction_correct = false;
  bool blame_correct = false;
  bool remediated = false;
  bool repaired = false;
  bool misfire = false;  // remediation applied against the wrong AS
  double time_to_remediate = -1.0;  // detection -> action, seconds
  std::uint64_t deferrals = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t churn_flaps = 0;
  double coverage = 1.0;
};

struct IntensityRow {
  double intensity = 0.0;
  std::size_t trials = 0;
  std::size_t found = 0;
  std::size_t direction_correct = 0;
  std::size_t blame_correct = 0;
  std::size_t remediated = 0;
  std::size_t repaired = 0;
  std::size_t misfires = 0;
  double remediate_seconds_sum = 0.0;
  std::uint64_t deferrals = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t churn_flaps = 0;
  double coverage_sum = 0.0;
};

TrialResult run_trial(double intensity, std::uint64_t fault_seed_base,
                      run::TrialContext& ctx) {
  TrialResult r;
  // The plane must be current *before* the world is built: BgpEngine,
  // Prober, and Lifeguard resolve FaultPlane::current() at construction.
  faults::FaultConfig fcfg = faults::FaultConfig::at_intensity(intensity);
  fcfg.seed = fault_seed_base ^ ctx.seed;
  faults::FaultPlane plane(fcfg);
  faults::ScopedFaultPlane fault_scope(plane);

  workload::SimWorld world(workload::SimWorld::small_config(ctx.seed));
  AsId origin = topo::kInvalidAs;
  for (const AsId as : world.topology().stubs) {
    if (world.graph().providers(as).size() >= 2) {
      origin = as;
      break;
    }
  }
  if (origin == topo::kInvalidAs) return r;

  core::LifeguardConfig cfg;
  cfg.decision.min_elapsed_seconds = 300.0;
  core::Lifeguard guard(world.scheduler(), world.engine(), world.prober(),
                        origin, cfg);

  std::vector<measure::VantagePoint> helpers;
  std::vector<AsId> helper_ases;
  for (const AsId as : world.stub_vantage_ases(kHelpers + 1)) {
    if (as == origin || helpers.size() >= kHelpers) continue;
    world.announce_production(as);
    helpers.push_back(measure::VantagePoint::in_as(as));
    helper_ases.push_back(as);
  }
  guard.set_helpers(helpers);
  guard.start();
  world.advance(700.0);  // baseline converged, one atlas round done

  // Reverse-direction scenario the decider is willing to poison for — the
  // same selection rule as the Lifeguard integration test.
  workload::ScenarioGenerator gen(world, ctx.seed ^ 0x73636eULL);
  std::optional<workload::FailureScenario> scenario;
  for (const AsId target_as : world.topology().stubs) {
    if (target_as == origin) continue;
    auto s = gen.make(origin, target_as, FailureDirection::kReverse, false,
                      helper_ases);
    if (!s) continue;
    core::PoisonDecider decider(world.graph());
    const AsId sources[] = {target_as};
    if (!decider.decide(origin, s->culprit_as, 1000.0, sources).poison) {
      gen.repair(*s);
      continue;
    }
    scenario = std::move(s);
    break;
  }
  if (!scenario) return r;
  r.scenario_found = true;
  gen.repair(*scenario);

  // Background churn on prefixes unrelated to the experiment. Excluded:
  // everyone whose announcements the experiment depends on.
  workload::ChurnConfig ccfg;
  ccfg.flappers = kChurnFlappers;
  ccfg.mean_period_seconds = 180.0;
  ccfg.seed = ctx.seed ^ 0x636875726eULL;
  ccfg.stop_at = 5000.0;
  workload::ChurnWorkload churn(world, ccfg);
  std::vector<AsId> exclude = helper_ases;
  exclude.push_back(origin);
  exclude.push_back(scenario->target_as);
  exclude.push_back(scenario->culprit_as);
  churn.start(exclude);

  guard.add_target(scenario->target);
  world.advance(1300.0);  // monitoring + atlas rounds with healthy paths

  scenario->failure_ids.push_back(world.failures().inject(
      dp::Failure{.at_as = scenario->culprit_as, .toward_as = origin}));
  // Long enough for detection + isolation + (degraded: deferred) decision.
  world.advance(2400.0);

  if (!guard.outages().empty()) {
    const auto& rec = guard.outages().front();
    r.direction_correct =
        rec.isolation.direction == FailureDirection::kReverse;
    r.blame_correct = rec.isolation.blamed_as == scenario->culprit_as;
    r.remediated = rec.action != core::RepairAction::kNone;
    r.misfire = r.remediated && !r.blame_correct;
    if (rec.remediated_at >= 0.0) {
      r.time_to_remediate = rec.remediated_at - rec.detected_at;
    }
  }

  // Operator fixes the underlying problem; did the sentinel notice and
  // revert within a few checks?
  gen.repair(*scenario);
  world.advance(600.0);
  r.repaired =
      !guard.outages().empty() && guard.outages().front().repaired_at > 0.0;

  r.deferrals =
      ctx.metrics->counter("lg.lifeguard.decisions_deferred").value();
  r.faults_injected = plane.injected();
  r.churn_flaps = churn.flaps();
  r.coverage = guard.probe_coverage();
  return r;
}

}  // namespace

int main() {
  bench::header("Section 7 extension — robustness under faults",
                "Isolation accuracy and repair success vs fault intensity");
  bench::JsonReport jr("sec7_robustness");

  std::vector<double> intensities = {0.0, 0.25, 0.5, 0.75, 1.0};
  if (const char* v = std::getenv("LG_FAULTS")) {
    if (std::strcmp(v, "off") != 0) {
      intensities = {std::strtod(v, nullptr)};
    }
  }
  std::uint64_t fault_seed_base = 0x666c7453ULL;  // "fltS"
  if (const char* v = std::getenv("LG_FAULTS_SEED")) {
    fault_seed_base = std::strtoull(v, nullptr, 10);
  }
  jr->set_config("intensities", static_cast<double>(intensities.size()));
  jr->set_config("trials_per_intensity",
                 static_cast<double>(kTrialsPerIntensity));
  jr->set_config("churn_flappers", static_cast<double>(kChurnFlappers));

  const std::size_t n = intensities.size() * kTrialsPerIntensity;
  run::TrialRunner runner;
  std::vector<TrialResult> results;
  {
    bench::WallClock wc("sec7_robustness", n, runner.threads());
    results = runner.run(n, [&](run::TrialContext& ctx) {
      const double intensity = intensities[ctx.index / kTrialsPerIntensity];
      return run_trial(intensity, fault_seed_base, ctx);
    });
  }

  std::vector<IntensityRow> rows(intensities.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    IntensityRow& row = rows[i / kTrialsPerIntensity];
    const TrialResult& t = results[i];
    row.intensity = intensities[i / kTrialsPerIntensity];
    ++row.trials;
    if (!t.scenario_found) continue;
    ++row.found;
    row.direction_correct += t.direction_correct ? 1 : 0;
    row.blame_correct += t.blame_correct ? 1 : 0;
    row.remediated += t.remediated ? 1 : 0;
    row.repaired += t.repaired ? 1 : 0;
    row.misfires += t.misfire ? 1 : 0;
    if (t.time_to_remediate >= 0.0) {
      row.remediate_seconds_sum += t.time_to_remediate;
    }
    row.deferrals += t.deferrals;
    row.faults_injected += t.faults_injected;
    row.churn_flaps += t.churn_flaps;
    row.coverage_sum += t.coverage;
  }

  bench::section("Accuracy and repair success vs fault intensity");
  std::printf("  %-10s %-7s %-9s %-9s %-10s %-9s %-9s %-7s %-9s %-12s\n",
              "intensity", "found", "dir ok", "blame ok", "remediate",
              "repaired", "misfires", "defer", "coverage", "mean t_rem");
  for (const IntensityRow& row : rows) {
    std::printf(
        "  %-10.2f %zu/%-5zu %-9zu %-9zu %-10zu %-9zu %-9zu %-7llu %-9.2f %-12s\n",
        row.intensity, row.found, row.trials, row.direction_correct,
        row.blame_correct, row.remediated, row.repaired, row.misfires,
        static_cast<unsigned long long>(row.deferrals),
        row.found ? row.coverage_sum / static_cast<double>(row.found) : 1.0,
        row.remediated
            ? (std::to_string(static_cast<int>(
                   row.remediate_seconds_sum /
                   static_cast<double>(row.remediated))) +
               " s")
                  .c_str()
            : "n/a");
  }

  bench::section("Fault volume");
  for (const IntensityRow& row : rows) {
    std::printf("  intensity %-6.2f faults injected %-8llu churn flaps %llu\n",
                row.intensity,
                static_cast<unsigned long long>(row.faults_injected),
                static_cast<unsigned long long>(row.churn_flaps));
  }

  for (const IntensityRow& row : rows) {
    if (row.found == 0) continue;
    const std::string suffix = std::to_string(row.intensity).substr(0, 4);
    const double found = static_cast<double>(row.found);
    jr->headline("frac_blame_correct_at_" + suffix,
                 static_cast<double>(row.blame_correct) / found);
    jr->headline("frac_repaired_at_" + suffix,
                 static_cast<double>(row.repaired) / found);
    jr->headline("misfires_at_" + suffix, static_cast<double>(row.misfires));
    if (row.remediated > 0) {
      jr->headline("mean_remediate_seconds_at_" + suffix,
                   row.remediate_seconds_sum /
                       static_cast<double>(row.remediated));
    }
  }
  return 0;
}
