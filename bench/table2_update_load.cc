// Table 2 reproduction — Internet-wide update load induced by poisoning at
// scale: additional daily path changes per router for varying deployment
// fraction I, monitored fraction T, and poisoning delay d. U (updates per
// router per poison) is *measured* from our own convergence experiments
// before the analytic table is printed, exactly as §5.4 derives it from
// §5.2's measurements.
#include <cstdio>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "run/trial_runner.h"
#include "util/stats.h"
#include "workload/load_model.h"
#include "workload/outages.h"
#include "workload/poison_experiment.h"
#include "workload/sim_world.h"

using namespace lg;
using topo::AsId;

namespace {

constexpr std::size_t kPoisonBatches = 2;
constexpr std::size_t kPoisonsPerBatch = 5;

// One batch of U measurements: a fresh (deterministic, identical) SimWorld,
// poison this batch's slice of the harvested candidates, return the per-
// poison averages in candidate order. Runs on the trial runner, so the two
// world convergences overlap on multi-core hosts.
std::vector<std::pair<double, double>> measure_u_batch(std::size_t batch) {
  workload::SimWorld world;
  AsId origin = topo::kInvalidAs;
  for (const AsId as : world.topology().stubs) {
    if (world.graph().providers(as).size() >= 2) {
      origin = as;
      break;
    }
  }
  workload::PoisonExperiment experiment(world, origin);
  experiment.setup();
  const auto feeds = world.feed_ases(20);
  const auto candidates = experiment.harvest_poison_candidates(feeds);

  std::vector<std::pair<double, double>> out;
  const std::size_t begin = batch * kPoisonsPerBatch;
  for (std::size_t i = begin;
       i < begin + kPoisonsPerBatch && i < candidates.size(); ++i) {
    const auto outcome = experiment.poison_and_measure(candidates[i], feeds);
    out.emplace_back(outcome.avg_updates_routing_via,
                     outcome.avg_updates_not_via);
  }
  return out;
}

}  // namespace

int main() {
  bench::header("Table 2",
                "Daily path changes per router from poisoning at scale");
  bench::JsonReport jr("table2_update_load");
  jr->set_config("poisons_measured",
                 static_cast<double>(kPoisonBatches * kPoisonsPerBatch));
  jr->set_config("feed_ases", 20.0);

  // ---------------- measure U from real poisonings ----------------
  run::TrialRunner runner;
  std::vector<std::vector<std::pair<double, double>>> batches;
  {
    bench::WallClock wc("table2_update_load", kPoisonBatches,
                        runner.threads());
    batches = runner.run(kPoisonBatches, [](run::TrialContext& ctx) {
      return measure_u_batch(ctx.index);
    });
  }

  util::Summary u_via;
  util::Summary u_not_via;
  for (const auto& batch : batches) {
    for (const auto& [via, not_via] : batch) {
      u_via.add(via);
      u_not_via.add(not_via);
    }
  }

  bench::section("Measured U (path changes per router per poison)");
  bench::compare_row("routers previously routing via poisoned AS", "2.03",
                     util::fixed(u_via.mean(), 2),
                     "(>=1 is BGP's own reaction; excess is overhead)");
  bench::compare_row("routers not routing via poisoned AS", "1.07",
                     util::fixed(u_not_via.mean(), 2));
  bench::kv("U used for the table (as in the paper)", "1.0");

  // ---------------- the analytic table ----------------
  workload::LoadModel model;  // U = 1
  model.calibrate_extrapolation(workload::generate_outage_study(10308));

  bench::section("Additional daily path changes per router");
  std::printf("  %-8s | %-21s | %-21s | %-21s\n", "", "d = 5 min",
              "d = 15 min", "d = 60 min");
  std::printf("  %-8s | %-10s %-10s | %-10s %-10s | %-10s %-10s\n", "I",
              "T=0.5", "T=1.0", "T=0.5", "T=1.0", "T=0.5", "T=1.0");
  const double is[] = {0.01, 0.1, 0.5};
  for (const double i : is) {
    std::printf("  %-8.2f | %-10.0f %-10.0f | %-10.0f %-10.0f | %-10.0f %-10.0f\n",
                i, model.daily_path_changes(i, 0.5, 5),
                model.daily_path_changes(i, 1.0, 5),
                model.daily_path_changes(i, 0.5, 15),
                model.daily_path_changes(i, 1.0, 15),
                model.daily_path_changes(i, 0.5, 60),
                model.daily_path_changes(i, 1.0, 60));
  }
  std::printf("\n  Paper values:      393/783 | 137/275 | 58/115   (I=0.01)\n");
  std::printf("                   3931/7866 | 1370/2748 | 576/1154 (I=0.1)\n");
  std::printf("                 19625/39200 | 6874/13714 | 2889/5771 (I=0.5)\n");

  bench::section("Context: daily update volume at real routers");
  bench::kv("single-homed edge router",
            util::fixed(workload::kEdgeRouterDailyUpdates, 0) + "/day");
  bench::kv("tier-1 routers",
            util::fixed(workload::kTier1RouterDailyUpdatesLow, 0) + "-" +
                util::fixed(workload::kTier1RouterDailyUpdatesHigh, 0) +
                "/day");
  const double big_deploy = model.daily_path_changes(0.5, 1.0, 5);
  bench::compare_row(
      "overhead at I=0.5, T=1, d=5 on an edge router", "35%",
      util::pct(big_deploy / workload::kEdgeRouterDailyUpdates));
  const double small_deploy = model.daily_path_changes(0.01, 1.0, 5);
  bench::compare_row(
      "overhead at I=0.01 on an edge router", "<1%",
      util::pct(small_deploy / workload::kEdgeRouterDailyUpdates));
  const double tier1_large = model.daily_path_changes(0.5, 1.0, 5);
  bench::compare_row(
      "overhead at I=0.5, T=1, d=5 on a tier-1 router", "12-15%",
      util::pct(tier1_large / workload::kTier1RouterDailyUpdatesLow) + "-" +
          util::pct(tier1_large / workload::kTier1RouterDailyUpdatesHigh));

  jr->headline("u_routing_via", u_via.mean());
  jr->headline("u_not_routing_via", u_not_via.mean());
  jr->headline("daily_changes_i05_t1_d5", big_deploy);
  jr->headline("daily_changes_i001_t1_d5", small_deploy);
  return 0;
}
