// §5.1 reproduction — poisoning efficacy:
//  (a) BGP-Mux-style deployment: harvest ASes from collector-peer paths,
//      poison each, and count how many peers that had routed through the
//      poisoned AS find an alternate path (paper: 77%; two-thirds of the
//      failures were poisons of a stub's only provider). Collector peers are
//      a mix of transit and edge ASes, as on RouteViews/RIS.
//  (b) Large-scale graph simulation: remove a transit AS from sampled paths
//      and test valley-free reachability (paper: 90% of 10M cases, with
//      BitTorrent-peer sources that live in multi-connected eyeball ASes).
//  (c) Cross-validation of (b) against (a) (paper: 92.5% agreement).
//  (d) Alternates around partial-outage failures like those LIFEGUARD
//      isolates (paper: 94%).
//
// Parallel structure (lg::run::TrialRunner): trial 0 runs the whole
// deployment experiment (a fully converged SimWorld plus 40 poisonings —
// world construction dominates), while the remaining trials chew through
// independent chunks of the (b)/(d) reachability samples against the shared
// read-only ValleyFreeOracle. Results merge in trial-index order, so stdout
// and the JSON report are byte-identical for any LG_THREADS value.
#include <cstdio>

#include "bench/bench_util.h"
#include "run/trial_runner.h"
#include "topology/valley_free.h"
#include "util/rng.h"
#include "workload/poison_experiment.h"
#include "workload/sim_world.h"

using namespace lg;
using topo::AsId;

namespace {

// One (peer, poison) observation from the deployment experiment, reduced to
// plain data inside trial 0 so the SimWorld never outlives its trial.
struct DeployCase {
  bool found_alternate = false;
  bool sole_provider = false;  // failure explained by poisoning a stub's
                               // only provider
  bool predicted_alternate = false;  // valley-free oracle's prediction (c)
};

struct TrialResult {
  // Filled by the deployment trial.
  std::vector<DeployCase> deploy;
  std::size_t feeds_observed = 0;
  std::size_t poisons = 0;
  // Filled by the reachability-chunk trials.
  std::size_t cases = 0;
  std::size_t with_alternate = 0;
};

constexpr std::size_t kDeployPoisons = 40;
constexpr std::size_t kSimChunks = 16;
constexpr std::size_t kSimCasesPerChunk = 3125;  // 16 * 3125 = 50,000
constexpr std::size_t kFailChunks = 12;
constexpr std::size_t kFailCasesPerChunk = 250;  // 12 * 250 = 3,000

TrialResult run_deployment_trial() {
  TrialResult result;
  workload::SimWorld world;
  AsId origin = topo::kInvalidAs;
  for (const AsId as : world.topology().stubs) {
    if (world.graph().providers(as).size() >= 2) {
      origin = as;
      break;
    }
  }
  workload::PoisonExperiment experiment(world, origin);
  experiment.setup();

  // Collector peers: high-degree transits plus edge networks (RouteViews
  // and RIS peer with both).
  std::vector<AsId> feeds = world.feed_ases(25);
  for (const AsId as : world.stub_vantage_ases(40)) {
    if (as != origin) feeds.push_back(as);
  }
  result.feeds_observed = feeds.size();
  const auto candidates = experiment.harvest_poison_candidates(feeds);
  const topo::ValleyFreeOracle oracle(world.graph());

  for (const AsId target : candidates) {
    if (result.poisons >= kDeployPoisons) break;
    ++result.poisons;
    const auto outcome = experiment.poison_and_measure(target, feeds);
    for (const auto& peer : outcome.peers) {
      if (!peer.routed_via_poisoned_before) continue;
      DeployCase c;
      c.found_alternate = peer.has_route_after && peer.avoids_poisoned_after;
      c.sole_provider = !c.found_alternate &&
                        world.graph().providers(peer.peer).size() == 1;
      c.predicted_alternate = oracle.reachable(
          peer.peer, origin, topo::Avoidance::of_as(target));
      result.deploy.push_back(c);
    }
  }
  return result;
}

TrialResult run_sim_chunk(const topo::GeneratedTopology& bigtopo,
                          const topo::ValleyFreeOracle& oracle,
                          const std::vector<AsId>& sources,
                          std::uint64_t seed) {
  TrialResult result;
  util::Rng rng(seed, 0x35313131ULL);
  while (result.cases < kSimCasesPerChunk) {
    const AsId src = rng.pick(sources);
    const AsId dst = rng.pick(bigtopo.stubs);
    if (src == dst) continue;
    const auto path = oracle.shortest_path(src, dst);
    if (path.size() <= 3) continue;  // need a transit beyond dst's provider
    // Iterate transit ASes except the destination's immediate provider
    // (a single-homed destination can never avoid its provider).
    for (std::size_t i = 1; i + 2 < path.size(); ++i) {
      const AsId poisoned = path[i];
      ++result.cases;
      if (oracle.reachable(src, dst, topo::Avoidance::of_as(poisoned))) {
        ++result.with_alternate;
      }
      if (result.cases >= kSimCasesPerChunk) break;
    }
  }
  return result;
}

TrialResult run_failure_chunk(const topo::GeneratedTopology& bigtopo,
                              const topo::ValleyFreeOracle& oracle,
                              const std::vector<AsId>& sources,
                              std::uint64_t seed) {
  TrialResult result;
  util::Rng rng(seed, 0x6661696cULL);
  while (result.cases < kFailCasesPerChunk) {
    const AsId src = rng.pick(sources);
    const AsId dst = rng.pick(bigtopo.stubs);
    if (src == dst) continue;
    const auto path = oracle.shortest_path(src, dst);
    if (path.size() <= 3) continue;
    const auto idx =
        1 + rng.uniform_u32(static_cast<std::uint32_t>(path.size() - 2));
    const AsId culprit = path[idx];
    if (bigtopo.graph.tier(culprit) == topo::AsTier::kStub) continue;
    // Partial-outage criterion: some other vantage still reaches dst.
    const AsId witness = rng.pick(sources);
    if (witness == src || witness == dst) continue;
    if (!oracle.reachable(witness, dst, topo::Avoidance::of_as(culprit))) {
      continue;
    }
    ++result.cases;
    if (oracle.reachable(src, dst, topo::Avoidance::of_as(culprit))) {
      ++result.with_alternate;
    }
  }
  return result;
}

}  // namespace

int main() {
  bench::header("Section 5.1 / Table 1 'Effectiveness'",
                "Do ASes find routes around a poisoned AS?");
  bench::JsonReport jr("sec5_1_efficacy");
  jr->set_config("deployment_poisons", static_cast<double>(kDeployPoisons));
  jr->set_config("sim_target_cases",
                 static_cast<double>(kSimChunks * kSimCasesPerChunk));
  jr->set_config("isolated_failure_cases",
                 static_cast<double>(kFailChunks * kFailCasesPerChunk));

  // Shared read-only inputs for the reachability chunks.
  topo::TopologyParams big;
  big.num_tier1 = 10;
  big.num_large_transit = 60;
  big.num_small_transit = 400;
  big.num_stubs = 2500;
  big.large_transit_peer_prob = 0.30;
  big.small_transit_peer_prob = 0.05;
  big.seed = 1234;
  const auto bigtopo = topo::generate_topology(big);
  const topo::ValleyFreeOracle oracle(bigtopo.graph);

  // Sources model BitTorrent peers: eyeball networks, which are multihomed
  // edge ASes or regional transits.
  std::vector<AsId> sources;
  for (const AsId as : bigtopo.stubs) {
    if (bigtopo.graph.providers(as).size() >= 2) sources.push_back(as);
  }
  const auto transits = bigtopo.transit();
  sources.insert(sources.end(), transits.begin(), transits.end());

  // Trial 0: deployment. Trials 1..kSimChunks: (b). Rest: (d).
  constexpr std::size_t kTrials = 1 + kSimChunks + kFailChunks;
  run::TrialRunner runner;
  std::vector<TrialResult> results;
  {
    bench::WallClock wc("sec5_1_efficacy", kTrials, runner.threads());
    results = runner.run(kTrials, [&](run::TrialContext& ctx) {
      if (ctx.index == 0) return run_deployment_trial();
      if (ctx.index <= kSimChunks) {
        return run_sim_chunk(bigtopo, oracle, sources, ctx.seed);
      }
      return run_failure_chunk(bigtopo, oracle, sources, ctx.seed);
    });
  }

  // ---------------- (a) deployment-style poisonings ----------------
  const TrialResult& deploy = results.front();
  std::size_t cases_using = deploy.deploy.size();
  std::size_t found_alternate = 0;
  std::size_t cut_sole_provider = 0;
  for (const auto& c : deploy.deploy) {
    if (c.found_alternate) ++found_alternate;
    if (c.sole_provider) ++cut_sole_provider;
  }

  bench::section("(a) Deployment-style poisonings");
  bench::kv("poisoned ASes", std::to_string(deploy.poisons));
  bench::kv("collector peers observed", std::to_string(deploy.feeds_observed));
  bench::kv("(peer, poison) cases with peer routing via poisoned AS",
            std::to_string(cases_using));
  bench::compare_row(
      "peers that found an alternate path", "77% (102/132)",
      cases_using ? util::pct(static_cast<double>(found_alternate) /
                              static_cast<double>(cases_using))
                  : "n/a");
  const std::size_t failures = cases_using - found_alternate;
  bench::compare_row(
      "failures where we poisoned a stub's only provider", "~2/3 of failures",
      failures ? util::pct(static_cast<double>(cut_sole_provider) /
                           static_cast<double>(failures))
               : "n/a (no failures)");

  // ---------------- (b) large-scale simulation ----------------
  bench::section("(b) Alternate-path existence on a large AS graph");
  std::size_t sim_cases = 0;
  std::size_t sim_alt = 0;
  for (std::size_t i = 1; i <= kSimChunks; ++i) {
    sim_cases += results[i].cases;
    sim_alt += results[i].with_alternate;
  }
  bench::kv("simulated (path, poisoned-AS) cases", std::to_string(sim_cases));
  bench::compare_row("cases with an alternate policy-compliant path",
                     "90% (of 10M)",
                     util::pct(static_cast<double>(sim_alt) /
                               static_cast<double>(sim_cases)));

  // ---------------- (c) cross-validation ----------------
  bench::section("(c) Simulation vs actual poisoning agreement");
  // For every (peer, poison) case from (a), does the valley-free simulation
  // predict the observed outcome? (Predictions were computed inside the
  // deployment trial against the deployment world's own graph.)
  std::size_t agree = 0;
  for (const auto& c : deploy.deploy) {
    if (c.found_alternate == c.predicted_alternate) ++agree;
  }
  bench::compare_row("simulation predicts actual poisoning outcome", "92.5%",
                     cases_using ? util::pct(static_cast<double>(agree) /
                                             static_cast<double>(cases_using))
                                 : "n/a");

  // ---------------- (d) failures isolated by LIFEGUARD ----------------
  // Paper: alternate paths existed for 94% of failures isolated in June
  // 2011. Those failures pass the partial-outage criteria: the destination
  // stays reachable from *somewhere* despite the culprit. Condition the
  // sample the same way.
  bench::section("(d) Alternates around isolated (partial) failures");
  std::size_t fail_cases = 0;
  std::size_t fail_alt = 0;
  for (std::size_t i = 1 + kSimChunks; i < kTrials; ++i) {
    fail_cases += results[i].cases;
    fail_alt += results[i].with_alternate;
  }
  bench::compare_row("isolated failures with alternate paths", "94%",
                     util::pct(static_cast<double>(fail_alt) /
                               static_cast<double>(fail_cases)));

  if (cases_using) {
    jr->headline("frac_peers_found_alternate",
                 static_cast<double>(found_alternate) /
                     static_cast<double>(cases_using));
  }
  jr->headline("frac_sim_cases_with_alternate",
               static_cast<double>(sim_alt) / static_cast<double>(sim_cases));
  if (cases_using) {
    jr->headline("sim_vs_actual_agreement",
                 static_cast<double>(agree) /
                     static_cast<double>(cases_using));
  }
  jr->headline("frac_isolated_failures_with_alternate",
               static_cast<double>(fail_alt) /
                   static_cast<double>(fail_cases));
  return 0;
}
