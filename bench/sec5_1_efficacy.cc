// §5.1 reproduction — poisoning efficacy:
//  (a) BGP-Mux-style deployment: harvest ASes from collector-peer paths,
//      poison each, and count how many peers that had routed through the
//      poisoned AS find an alternate path (paper: 77%; two-thirds of the
//      failures were poisons of a stub's only provider). Collector peers are
//      a mix of transit and edge ASes, as on RouteViews/RIS.
//  (b) Large-scale graph simulation: remove a transit AS from sampled paths
//      and test valley-free reachability (paper: 90% of 10M cases, with
//      BitTorrent-peer sources that live in multi-connected eyeball ASes).
//  (c) Cross-validation of (b) against (a) (paper: 92.5% agreement).
//  (d) Alternates around partial-outage failures like those LIFEGUARD
//      isolates (paper: 94%).
#include <cstdio>
#include <unordered_map>

#include "bench/bench_util.h"
#include "topology/valley_free.h"
#include "util/rng.h"
#include "workload/poison_experiment.h"
#include "workload/sim_world.h"

using namespace lg;
using topo::AsId;

int main() {
  bench::header("Section 5.1 / Table 1 'Effectiveness'",
                "Do ASes find routes around a poisoned AS?");
  bench::JsonReport jr("sec5_1_efficacy");
  jr->set_config("deployment_poisons", 40.0);
  jr->set_config("sim_target_cases", 50000.0);
  jr->set_config("isolated_failure_cases", 3000.0);

  // ---------------- (a) deployment-style poisoning ----------------
  workload::SimWorld world;
  AsId origin = topo::kInvalidAs;
  for (const AsId as : world.topology().stubs) {
    if (world.graph().providers(as).size() >= 2) {
      origin = as;
      break;
    }
  }
  workload::PoisonExperiment experiment(world, origin);
  experiment.setup();

  // Collector peers: high-degree transits plus edge networks (RouteViews
  // and RIS peer with both).
  std::vector<AsId> feeds = world.feed_ases(25);
  {
    const auto stubs = world.stub_vantage_ases(40);
    for (const AsId as : stubs) {
      if (as != origin) feeds.push_back(as);
    }
  }
  const auto candidates = experiment.harvest_poison_candidates(feeds);

  std::size_t cases_using = 0;       // (peer, poison) where peer routed via
  std::size_t found_alternate = 0;   // ... and found a path avoiding it
  std::size_t cut_sole_provider = 0; // failures explained by sole-provider
  std::unordered_map<AsId, bool> actual_any_alternate;

  std::size_t n_poisons = 0;
  for (const AsId target : candidates) {
    if (n_poisons >= 40) break;
    ++n_poisons;
    const auto outcome = experiment.poison_and_measure(target, feeds);
    bool any_alt = false;
    for (const auto& peer : outcome.peers) {
      if (!peer.routed_via_poisoned_before) continue;
      ++cases_using;
      if (peer.has_route_after && peer.avoids_poisoned_after) {
        ++found_alternate;
        any_alt = true;
      } else {
        const auto providers = world.graph().providers(peer.peer);
        if (providers.size() == 1) ++cut_sole_provider;
      }
    }
    actual_any_alternate[target] = any_alt;
  }

  bench::section("(a) Deployment-style poisonings");
  bench::kv("poisoned ASes", std::to_string(n_poisons));
  bench::kv("collector peers observed", std::to_string(feeds.size()));
  bench::kv("(peer, poison) cases with peer routing via poisoned AS",
            std::to_string(cases_using));
  bench::compare_row(
      "peers that found an alternate path", "77% (102/132)",
      cases_using ? util::pct(static_cast<double>(found_alternate) /
                              static_cast<double>(cases_using))
                  : "n/a");
  const std::size_t failures = cases_using - found_alternate;
  bench::compare_row(
      "failures where we poisoned a stub's only provider", "~2/3 of failures",
      failures ? util::pct(static_cast<double>(cut_sole_provider) /
                           static_cast<double>(failures))
               : "n/a (no failures)");

  // ---------------- (b) large-scale simulation ----------------
  bench::section("(b) Alternate-path existence on a large AS graph");
  topo::TopologyParams big;
  big.num_tier1 = 10;
  big.num_large_transit = 60;
  big.num_small_transit = 400;
  big.num_stubs = 2500;
  big.large_transit_peer_prob = 0.30;
  big.small_transit_peer_prob = 0.05;
  big.seed = 1234;
  const auto bigtopo = topo::generate_topology(big);
  const topo::ValleyFreeOracle oracle(bigtopo.graph);
  util::Rng rng(99, 0x35313131ULL);

  // Sources model BitTorrent peers: eyeball networks, which are multihomed
  // edge ASes or regional transits.
  std::vector<AsId> sources;
  for (const AsId as : bigtopo.stubs) {
    if (bigtopo.graph.providers(as).size() >= 2) sources.push_back(as);
  }
  const auto transits = bigtopo.transit();
  sources.insert(sources.end(), transits.begin(), transits.end());

  std::size_t sim_cases = 0;
  std::size_t sim_alt = 0;
  const std::size_t kTargetCases = 50000;
  while (sim_cases < kTargetCases) {
    const AsId src = rng.pick(sources);
    const AsId dst = rng.pick(bigtopo.stubs);
    if (src == dst) continue;
    const auto path = oracle.shortest_path(src, dst);
    if (path.size() <= 3) continue;  // need a transit beyond dst's provider
    // Iterate transit ASes except the destination's immediate provider
    // (a single-homed destination can never avoid its provider).
    for (std::size_t i = 1; i + 2 < path.size(); ++i) {
      const AsId poisoned = path[i];
      ++sim_cases;
      if (oracle.reachable(src, dst, topo::Avoidance::of_as(poisoned))) {
        ++sim_alt;
      }
      if (sim_cases >= kTargetCases) break;
    }
  }
  bench::kv("simulated (path, poisoned-AS) cases", std::to_string(sim_cases));
  bench::compare_row("cases with an alternate policy-compliant path",
                     "90% (of 10M)",
                     util::pct(static_cast<double>(sim_alt) /
                               static_cast<double>(sim_cases)));

  // ---------------- (c) cross-validation ----------------
  bench::section("(c) Simulation vs actual poisoning agreement");
  // For every (peer, poison) case from (a), does the valley-free simulation
  // predict the observed outcome?
  const topo::ValleyFreeOracle small_oracle(world.graph());
  std::size_t agree = 0;
  std::size_t compared = 0;
  std::size_t repeat_poisons = 0;
  for (const AsId target : candidates) {
    if (repeat_poisons >= 40) break;
    ++repeat_poisons;
    const auto outcome = experiment.poison_and_measure(target, feeds);
    for (const auto& peer : outcome.peers) {
      if (!peer.routed_via_poisoned_before) continue;
      const bool actual = peer.has_route_after && peer.avoids_poisoned_after;
      const bool predicted = small_oracle.reachable(
          peer.peer, origin, topo::Avoidance::of_as(target));
      ++compared;
      if (actual == predicted) ++agree;
    }
  }
  bench::compare_row("simulation predicts actual poisoning outcome", "92.5%",
                     compared ? util::pct(static_cast<double>(agree) /
                                          static_cast<double>(compared))
                              : "n/a");

  // ---------------- (d) failures isolated by LIFEGUARD ----------------
  // Paper: alternate paths existed for 94% of failures isolated in June
  // 2011. Those failures pass the partial-outage criteria: the destination
  // stays reachable from *somewhere* despite the culprit. Condition the
  // sample the same way.
  bench::section("(d) Alternates around isolated (partial) failures");
  std::size_t fail_cases = 0;
  std::size_t fail_alt = 0;
  while (fail_cases < 3000) {
    const AsId src = rng.pick(sources);
    const AsId dst = rng.pick(bigtopo.stubs);
    if (src == dst) continue;
    const auto path = oracle.shortest_path(src, dst);
    if (path.size() <= 3) continue;
    const auto idx =
        1 + rng.uniform_u32(static_cast<std::uint32_t>(path.size() - 2));
    const AsId culprit = path[idx];
    if (bigtopo.graph.tier(culprit) == topo::AsTier::kStub) continue;
    // Partial-outage criterion: some other vantage still reaches dst.
    const AsId witness = rng.pick(sources);
    if (witness == src || witness == dst) continue;
    if (!oracle.reachable(witness, dst, topo::Avoidance::of_as(culprit))) {
      continue;
    }
    ++fail_cases;
    if (oracle.reachable(src, dst, topo::Avoidance::of_as(culprit))) {
      ++fail_alt;
    }
  }
  bench::compare_row("isolated failures with alternate paths", "94%",
                     util::pct(static_cast<double>(fail_alt) /
                               static_cast<double>(fail_cases)));

  if (cases_using) {
    jr->headline("frac_peers_found_alternate",
                 static_cast<double>(found_alternate) /
                     static_cast<double>(cases_using));
  }
  jr->headline("frac_sim_cases_with_alternate",
               static_cast<double>(sim_alt) / static_cast<double>(sim_cases));
  if (compared) {
    jr->headline("sim_vs_actual_agreement",
                 static_cast<double>(agree) / static_cast<double>(compared));
  }
  jr->headline("frac_isolated_failures_with_alternate",
               static_cast<double>(fail_alt) /
                   static_cast<double>(fail_cases));
  return 0;
}
