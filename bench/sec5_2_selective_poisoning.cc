// §5.2 / §2.3 reproduction — path diversity for link avoidance:
//  * Forward: an origin with five providers inspects its five candidate
//    egress routes toward each feed AS; if the last AS link before the
//    destination on one route failed silently, can another provider's route
//    avoid it? (paper: 90% of links avoidable).
//  * Reverse (selective poisoning): poison AS A on announcements via every
//    provider except M; A then reaches us via M's chain. A first-hop AS
//    link of a feed peer is avoidable if some choice of M moves the peer
//    off that link while it retains a route (paper: 73%).
#include <algorithm>
#include <cstdio>
#include <set>
#include <vector>

#include "bench/bench_util.h"
#include "core/remediation.h"
#include "run/trial_runner.h"
#include "workload/sim_world.h"

using namespace lg;
using topo::AsId;

namespace {

// One trial of the reverse study: a fresh world (identical seed, so the
// same topology and the same baseline routes) probing one chunk of feed
// peers. Chunked worlds also mean each chunk's poison/unpoison churn cannot
// leak route-flap damping penalties into another chunk's measurements.
struct ReverseChunk {
  std::size_t links = 0;
  std::size_t avoidable = 0;
  std::size_t peers_tested = 0;
};

ReverseChunk run_reverse_chunk(std::size_t first, std::size_t count) {
  workload::SimWorldConfig cfg;
  cfg.topology.num_mux_origins = 1;
  cfg.topology.mux_provider_count = 5;
  workload::SimWorld world(cfg);
  const AsId origin = world.topology().mux_origins.front();
  const auto providers = world.graph().providers(origin);

  core::Remediator remediator(world.engine(), origin);
  remediator.announce_baseline();
  world.converge();

  const auto feeds = world.feed_ases(60);
  const auto& prefix = remediator.production_prefix();

  ReverseChunk chunk;
  for (std::size_t i = first; i < first + count && i < feeds.size(); ++i) {
    const AsId feed = feeds[i];
    const auto* before = world.engine().best_route(feed, prefix);
    if (before == nullptr || before->path.empty()) continue;
    const AsId original_first_hop = before->neighbor;
    ++chunk.peers_tested;
    ++chunk.links;  // the (feed -> original_first_hop) link

    bool avoidable = false;
    for (const AsId unpoisoned : providers) {
      // Poison the *feed* AS via every provider except `unpoisoned`.
      std::vector<AsId> poisoned_via;
      for (const AsId p : providers) {
        if (p != unpoisoned) poisoned_via.push_back(p);
      }
      remediator.selective_poison(feed, poisoned_via);
      world.converge();
      const auto* after = world.engine().best_route(feed, prefix);
      if (after != nullptr && after->neighbor != original_first_hop) {
        avoidable = true;
      }
      remediator.unpoison();
      world.converge();
      if (avoidable) break;
    }
    if (avoidable) ++chunk.avoidable;
  }
  return chunk;
}

}  // namespace

int main() {
  bench::header("Section 5.2 selective poisoning + Section 2.3 forward study",
                "Avoiding individual AS links via provider diversity");
  bench::JsonReport jr("sec5_2_selective_poisoning");
  jr->set_config("mux_provider_count", 5.0);
  jr->set_config("feed_ases", 60.0);

  workload::SimWorldConfig cfg;
  cfg.topology.num_mux_origins = 1;
  cfg.topology.mux_provider_count = 5;
  workload::SimWorld world(cfg);
  const AsId origin = world.topology().mux_origins.front();
  const auto providers = world.graph().providers(origin);

  core::Remediator remediator(world.engine(), origin);
  remediator.announce_baseline();
  world.converge();

  const auto feeds = world.feed_ases(60);
  const auto& prefix = remediator.production_prefix();

  // ---------------- forward study (§2.3) ----------------
  // For each feed AS, compute the AS path from each provider toward it and
  // the last AS link before the destination; the link is avoidable if some
  // other provider's path ends on a different link.
  bench::section("Forward: avoid the last AS link before the destination");
  std::size_t fwd_links = 0;
  std::size_t fwd_avoidable = 0;
  for (const AsId feed : feeds) {
    const auto feed_addr = topo::AddressPlan::router_address(
        topo::RouterId{feed, 0});
    std::vector<topo::AsLinkKey> last_links;
    for (const AsId provider : providers) {
      const auto fwd =
          world.dataplane().forward(origin, feed_addr, std::nullopt, provider);
      if (!fwd.delivered()) continue;
      const auto path = fwd.as_path();
      if (path.size() < 2) continue;
      last_links.emplace_back(path[path.size() - 2], path.back());
    }
    const std::set<topo::AsLinkKey,
                   decltype([](const topo::AsLinkKey& x,
                               const topo::AsLinkKey& y) {
                     return x.a != y.a ? x.a < y.a : x.b < y.b;
                   })>
        distinct(last_links.begin(), last_links.end());
    for (const auto& link : distinct) {
      ++fwd_links;
      if (distinct.size() > 1) ++fwd_avoidable;
      (void)link;
    }
  }
  bench::compare_row("last-hop AS links avoidable via another provider",
                     "90%",
                     fwd_links ? util::pct(static_cast<double>(fwd_avoidable) /
                                           static_cast<double>(fwd_links))
                               : "n/a");

  // ---------------- reverse study (selective poisoning) ----------------
  bench::section("Reverse: selective poisoning of feed peers' first-hop links");
  std::size_t rev_links = 0;
  std::size_t rev_avoidable = 0;
  std::size_t peers_tested = 0;
  {
    constexpr std::size_t kChunk = 10;
    const std::size_t chunks = (feeds.size() + kChunk - 1) / kChunk;
    run::TrialRunner runner;
    std::vector<ReverseChunk> results;
    {
      bench::WallClock wc("sec5_2_selective_poisoning", chunks,
                          runner.threads());
      results = runner.run(chunks, [&](run::TrialContext& ctx) {
        return run_reverse_chunk(ctx.index * kChunk, kChunk);
      });
    }
    for (const ReverseChunk& chunk : results) {
      rev_links += chunk.links;
      rev_avoidable += chunk.avoidable;
      peers_tested += chunk.peers_tested;
    }
  }
  bench::kv("feed peers tested", std::to_string(peers_tested));
  bench::compare_row(
      "first-hop AS links avoidable via selective poisoning", "73%",
      rev_links ? util::pct(static_cast<double>(rev_avoidable) /
                            static_cast<double>(rev_links))
                : "n/a");

  // ---------------- disturbance comparison (§2.3 critique) ----------------
  // How many networks change their next hop under each announcement-based
  // technique? Selective advertising and prepending act on *everyone*
  // entering via the deselected provider; selective poisoning moves only the
  // targeted AS and its customer cone.
  bench::section("Collateral movement per technique (ASes changing next hop)");
  const auto snapshot_next_hops = [&] {
    std::vector<std::pair<AsId, AsId>> out;
    for (const AsId as : world.graph().as_ids()) {
      if (const auto* r = world.engine().best_route(as, prefix)) {
        out.emplace_back(as, r->neighbor);
      }
    }
    return out;
  };
  const auto count_moved = [&](const std::vector<std::pair<AsId, AsId>>& base) {
    std::size_t moved = 0;
    for (const auto& [as, nh] : base) {
      const auto* r = world.engine().best_route(as, prefix);
      if (r == nullptr || r->neighbor != nh) ++moved;
    }
    return moved;
  };
  // Pick a target AS currently reached through our first provider.
  const AsId victim = feeds.front();
  const auto baseline_nh = snapshot_next_hops();

  // (1) Selective poisoning of `victim` via all but one provider.
  std::vector<AsId> all_but_one(providers.begin() + 1, providers.end());
  remediator.selective_poison(victim, all_but_one);
  world.converge();
  const std::size_t moved_selective = count_moved(baseline_nh);
  remediator.unpoison();
  world.converge();

  // (2) Selective advertising: withdraw from the same set of providers.
  {
    bgp::OriginPolicy policy;
    policy.default_path = bgp::baseline_path(origin, 3);
    for (const AsId p : all_but_one) policy.per_neighbor[p] = std::nullopt;
    world.engine().originate(origin, prefix, policy);
    world.converge();
  }
  const std::size_t moved_advertising = count_moved(baseline_nh);
  remediator.unpoison();
  world.converge();

  // (3) Prepending: make the same providers' announcements longer.
  {
    bgp::OriginPolicy policy;
    policy.default_path = bgp::baseline_path(origin, 3);
    for (const AsId p : all_but_one) {
      policy.per_neighbor[p] = bgp::baseline_path(origin, 6);
    }
    world.engine().originate(origin, prefix, policy);
    world.converge();
  }
  const std::size_t moved_prepending = count_moved(baseline_nh);
  remediator.unpoison();
  world.converge();

  bench::kv("selective poisoning (targets one AS)",
            std::to_string(moved_selective) + " ASes moved");
  bench::kv("selective advertising (acts on next-hop provider)",
            std::to_string(moved_advertising) + " ASes moved");
  bench::kv("prepending (acts on next-hop provider)",
            std::to_string(moved_prepending) + " ASes moved");
  std::printf(
      "\n  The paper's §2.3 critique quantified: announcement-wide knobs move\n"
      "  every network that had been entering via the deselected providers;\n"
      "  selective poisoning moves only the poisoned AS and its cone.\n");

  if (fwd_links) {
    jr->headline("frac_forward_links_avoidable",
                 static_cast<double>(fwd_avoidable) /
                     static_cast<double>(fwd_links));
  }
  if (rev_links) {
    jr->headline("frac_reverse_links_avoidable",
                 static_cast<double>(rev_avoidable) /
                     static_cast<double>(rev_links));
  }
  jr->headline("ases_moved_selective_poisoning",
               static_cast<double>(moved_selective));
  jr->headline("ases_moved_selective_advertising",
               static_cast<double>(moved_advertising));
  jr->headline("ases_moved_prepending",
               static_cast<double>(moved_prepending));
  return 0;
}
