// Repair under an adversarial Internet — how LIFEGUARD's poisoning-based
// repair holds up when a fraction of ASes run hostile policies
// (lg::adversary): path-length filters that reject the longer post-poison
// paths, default-routed stubs that keep forwarding into the failure after
// the control plane "repaired" it, Peerlock leak filters in the core, and
// destabilizing announcers churning unrelated prefixes.
//
// Sweeps behavior prevalence and runs the full detect -> isolate -> poison
// -> escalate -> repair-or-captive lifecycle at each level. At prevalence 0
// the plane is disabled and every trial must match the cooperative
// baseline: full repair, zero misfires, zero captives.
//
// Parallel structure (lg::run::TrialRunner): one trial per
// (prevalence, replicate) cell, each with its own SimWorld and its own
// AdversaryPlane installed via ScopedAdversaryPlane. Per-trial adversary
// seeds derive from the trial seed, so output is bit-identical per seed for
// any LG_THREADS / LG_WORLD_THREADS value.
//
// Environment: LG_ADVERSARY=<prevalence> replaces the sweep with that
// single prevalence; LG_ADVERSARY_SEED=<n> rebases every trial's adversary
// seed.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "adversary/adversary_plane.h"
#include "bench/bench_util.h"
#include "core/lifeguard.h"
#include "run/trial_runner.h"
#include "workload/destabilizer.h"
#include "workload/scenarios.h"
#include "workload/sim_world.h"

using namespace lg;
using core::FailureDirection;
using topo::AsId;

namespace {

constexpr std::size_t kTrialsPerPrevalence = 4;
constexpr std::size_t kHelpers = 6;

struct TrialResult {
  bool scenario_found = false;
  bool baseline_reachable = false;  // pre-injection data-plane audit
  bool blame_correct = false;
  bool remediated = false;
  bool repaired = false;
  bool captive = false;
  bool control_plane_repaired = false;  // audited at a captive give-up
  bool misfire = false;  // remediation applied against the wrong AS
  int escalations = 0;
  std::uint64_t baseline_msgs = 0;  // updates to converge the clean world
  std::uint64_t pathlen_rejections = 0;
  std::uint64_t peerlock_rejections = 0;
  std::uint64_t destabilizer_steps = 0;
};

struct PrevalenceRow {
  double prevalence = 0.0;
  std::size_t trials = 0;
  std::size_t found = 0;
  std::size_t eligible = 0;  // baseline-reachable: repair is judged on these
  std::size_t blame_correct = 0;
  std::size_t remediated = 0;
  std::size_t repaired = 0;
  std::size_t captives = 0;
  std::size_t control_plane_repaired = 0;
  std::size_t misfires = 0;
  std::uint64_t escalations = 0;
  std::uint64_t baseline_msgs = 0;
  std::uint64_t pathlen_rejections = 0;
  std::uint64_t peerlock_rejections = 0;
  std::uint64_t destabilizer_steps = 0;
};

TrialResult run_trial(double prevalence, std::uint64_t adv_seed_base,
                      run::TrialContext& ctx) {
  TrialResult r;
  // The plane must be current *before* the world is built: BgpEngine,
  // Lifeguard, and DestabilizerWorkload resolve AdversaryPlane::current()
  // at construction.
  adversary::AdversaryConfig acfg =
      adversary::AdversaryConfig::at_prevalence(prevalence);
  acfg.seed = adv_seed_base ^ ctx.seed;
  adversary::AdversaryPlane plane(acfg);
  adversary::ScopedAdversaryPlane adv_scope(plane);

  workload::SimWorld world(workload::SimWorld::small_config(ctx.seed));
  AsId origin = topo::kInvalidAs;
  for (const AsId as : world.topology().stubs) {
    if (world.graph().providers(as).size() >= 2) {
      origin = as;
      break;
    }
  }
  if (origin == topo::kInvalidAs) return r;

  core::LifeguardConfig cfg;
  cfg.decision.min_elapsed_seconds = 300.0;
  core::Lifeguard guard(world.scheduler(), world.engine(), world.prober(),
                        origin, cfg);

  std::vector<measure::VantagePoint> helpers;
  std::vector<AsId> helper_ases;
  for (const AsId as : world.stub_vantage_ases(kHelpers + 1)) {
    if (as == origin || helpers.size() >= kHelpers) continue;
    world.announce_production(as);
    helpers.push_back(measure::VantagePoint::in_as(as));
    helper_ases.push_back(as);
  }
  guard.set_helpers(helpers);
  guard.start();
  world.advance(700.0);  // baseline converged, one atlas round done
  r.baseline_msgs = world.engine().total_messages();

  // Reverse-direction scenario the decider is willing to poison for — the
  // same selection rule as the robustness bench.
  workload::ScenarioGenerator gen(world, ctx.seed ^ 0x73636eULL);
  std::optional<workload::FailureScenario> scenario;
  for (const AsId target_as : world.topology().stubs) {
    if (target_as == origin) continue;
    auto s = gen.make(origin, target_as, FailureDirection::kReverse, false,
                      helper_ases);
    if (!s) continue;
    core::PoisonDecider decider(world.graph());
    const AsId sources[] = {target_as};
    if (!decider.decide(origin, s->culprit_as, 1000.0, sources).poison) {
      gen.repair(*s);
      continue;
    }
    scenario = std::move(s);
    break;
  }
  if (!scenario) return r;
  r.scenario_found = true;
  gen.repair(*scenario);

  // Destabilizing announcers on prefixes unrelated to the experiment.
  workload::DestabilizerWorkloadConfig dcfg;
  dcfg.stop_at = 5000.0;
  workload::DestabilizerWorkload destab(world, dcfg);
  std::vector<AsId> exclude = helper_ases;
  exclude.push_back(origin);
  exclude.push_back(scenario->target_as);
  exclude.push_back(scenario->culprit_as);
  destab.start(exclude);

  guard.add_target(scenario->target);
  world.advance(1300.0);  // monitoring + atlas rounds with healthy paths

  // Pre-injection audit: repair success is only meaningful for targets the
  // hostile policies have not already cut off at baseline. Judging those
  // trials would misattribute a pre-existing blackhole to a failed repair
  // (and tempt the decider into a misfire on an unrelated AS).
  r.baseline_reachable =
      world.prober().ping(origin, scenario->target, guard.vantage().addr)
          .replied;
  if (!r.baseline_reachable) return r;

  scenario->failure_ids.push_back(world.failures().inject(
      dp::Failure{.at_as = scenario->culprit_as, .toward_as = origin}));
  // Long enough for detection + decision + the full escalation ladder
  // (three sentinel failures per rung, three rungs past the original).
  world.advance(3000.0);

  if (!guard.outages().empty()) {
    const auto& rec = guard.outages().front();
    r.blame_correct = rec.isolation.blamed_as == scenario->culprit_as;
    r.remediated = rec.action != core::RepairAction::kNone;
    r.misfire = r.remediated && !r.blame_correct;
  }

  // Operator fixes the underlying problem; did the sentinel notice and
  // revert within a few checks?
  gen.repair(*scenario);
  world.advance(600.0);
  if (!guard.outages().empty()) {
    const auto& rec = guard.outages().front();
    r.repaired = rec.repaired_at > 0.0;
    r.captive = rec.captive;
    r.control_plane_repaired = rec.control_plane_repaired;
    r.escalations = rec.escalations;
  }

  r.pathlen_rejections = world.engine().pathlen_rejections();
  r.peerlock_rejections = world.engine().peerlock_rejections();
  r.destabilizer_steps = destab.steps_played();
  return r;
}

}  // namespace

int main() {
  bench::header("Section 8 extension — repair under an adversarial Internet",
                "Repair success, captives, and misfires vs hostile-policy "
                "prevalence");
  bench::JsonReport jr("sec8_adversarial");

  std::vector<double> prevalences = {0.0, 0.05, 0.25, 0.5, 1.0};
  if (const char* v = std::getenv("LG_ADVERSARY")) {
    if (std::strcmp(v, "off") != 0) {
      prevalences = {std::strtod(v, nullptr)};
    }
  }
  std::uint64_t adv_seed_base = 0x61647653ULL;  // "advS"
  if (const char* v = std::getenv("LG_ADVERSARY_SEED")) {
    adv_seed_base = std::strtoull(v, nullptr, 10);
  }
  jr->set_config("prevalences", static_cast<double>(prevalences.size()));
  jr->set_config("trials_per_prevalence",
                 static_cast<double>(kTrialsPerPrevalence));

  const std::size_t n = prevalences.size() * kTrialsPerPrevalence;
  run::TrialRunner runner;
  std::vector<TrialResult> results;
  {
    bench::WallClock wc("sec8_adversarial", n, runner.threads());
    results = runner.run(n, [&](run::TrialContext& ctx) {
      const double prevalence = prevalences[ctx.index / kTrialsPerPrevalence];
      return run_trial(prevalence, adv_seed_base, ctx);
    });
  }

  std::vector<PrevalenceRow> rows(prevalences.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    PrevalenceRow& row = rows[i / kTrialsPerPrevalence];
    const TrialResult& t = results[i];
    row.prevalence = prevalences[i / kTrialsPerPrevalence];
    ++row.trials;
    if (!t.scenario_found) continue;
    ++row.found;
    row.baseline_msgs += t.baseline_msgs;
    if (!t.baseline_reachable) continue;
    ++row.eligible;
    row.blame_correct += t.blame_correct ? 1 : 0;
    row.remediated += t.remediated ? 1 : 0;
    row.repaired += t.repaired ? 1 : 0;
    row.captives += t.captive ? 1 : 0;
    row.control_plane_repaired += t.control_plane_repaired ? 1 : 0;
    row.misfires += t.misfire ? 1 : 0;
    row.escalations += static_cast<std::uint64_t>(t.escalations);
    row.pathlen_rejections += t.pathlen_rejections;
    row.peerlock_rejections += t.peerlock_rejections;
    row.destabilizer_steps += t.destabilizer_steps;
  }

  bench::section("Repair success vs hostile-policy prevalence");
  std::printf("  %-10s %-7s %-9s %-9s %-10s %-9s %-9s %-9s %-9s %-7s\n",
              "prevalence", "found", "eligible", "blame ok", "remediate",
              "repaired", "captive", "cp-fixed", "misfires", "escal");
  for (const PrevalenceRow& row : rows) {
    std::printf("  %-10.2f %zu/%-5zu %-9zu %-9zu %-10zu %-9zu %-9zu %-9zu "
                "%-9zu %-7llu\n",
                row.prevalence, row.found, row.trials, row.eligible,
                row.blame_correct, row.remediated, row.repaired, row.captives,
                row.control_plane_repaired, row.misfires,
                static_cast<unsigned long long>(row.escalations));
  }

  bench::section("Adversarial pressure");
  for (const PrevalenceRow& row : rows) {
    std::printf(
        "  prevalence %-6.2f baseline msgs %-9llu pathlen rejects %-8llu "
        "peerlock rejects %-8llu destabilizer steps %llu\n",
        row.prevalence,
        static_cast<unsigned long long>(row.baseline_msgs),
        static_cast<unsigned long long>(row.pathlen_rejections),
        static_cast<unsigned long long>(row.peerlock_rejections),
        static_cast<unsigned long long>(row.destabilizer_steps));
  }

  for (const PrevalenceRow& row : rows) {
    if (row.eligible == 0) continue;
    const std::string suffix = std::to_string(row.prevalence).substr(0, 4);
    const double eligible = static_cast<double>(row.eligible);
    jr->headline("frac_repaired_at_" + suffix,
                 static_cast<double>(row.repaired) / eligible);
    jr->headline("captives_at_" + suffix, static_cast<double>(row.captives));
    jr->headline("misfires_at_" + suffix, static_cast<double>(row.misfires));
    if (row.found > 0) {
      jr->headline("mean_baseline_msgs_at_" + suffix,
                   static_cast<double>(row.baseline_msgs) /
                       static_cast<double>(row.found));
    }
  }
  return 0;
}
