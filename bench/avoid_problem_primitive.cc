// Ablation / future-work bench (§3, §9): poisoning — the deployable
// approximation — head-to-head against the AVOID_PROBLEM(X, P) primitive the
// paper argues BGP should grow. Same topology, same "broken" ASes; compare:
//   * avoidance: how many ASes move off the problem AS,
//   * backup: how many ASes lose the prefix entirely (captives),
//   * churn: update messages generated per event,
//   * notification: does the problem AS learn it is being avoided?
#include <cstdio>

#include "bench/bench_util.h"
#include "util/stats.h"
#include "workload/poison_experiment.h"
#include "workload/sim_world.h"

using namespace lg;
using topo::AsId;

namespace {

struct EventStats {
  util::Summary moved;      // ASes whose traffic left the target
  util::Summary cut_off;    // ASes with no route to the production prefix
  util::Summary messages;   // update messages per event
  std::size_t notified = 0; // events where the target AS was notified
  std::size_t events = 0;
};

}  // namespace

int main() {
  bench::header("AVOID_PROBLEM primitive vs BGP poisoning",
                "What the paper's proposed primitive would buy (§3, §9)");
  bench::JsonReport jr("avoid_problem_primitive");
  jr->set_config("max_problem_events", 20.0);

  workload::SimWorld world;
  AsId origin = topo::kInvalidAs;
  for (const AsId as : world.topology().stubs) {
    if (world.graph().providers(as).size() >= 2) {
      origin = as;
      break;
    }
  }
  const auto prefix = topo::AddressPlan::production_prefix(origin);

  const auto announce = [&](std::optional<bgp::AvoidHint> hint,
                            std::optional<AsId> poison) {
    bgp::OriginPolicy policy;
    policy.default_path =
        poison ? bgp::poisoned_path(origin, {*poison}, 3)
               : bgp::baseline_path(origin, 3);
    policy.avoid_hint = hint;
    world.engine().originate(origin, prefix, policy);
    world.converge();
  };
  announce(std::nullopt, std::nullopt);

  // Harvest transit targets on paths toward the origin.
  workload::PoisonExperiment harvester(world, origin);
  std::vector<AsId> feeds = world.feed_ases(25);
  for (const AsId as : world.stub_vantage_ases(40)) {
    if (as != origin) feeds.push_back(as);
  }
  const auto targets = harvester.harvest_poison_candidates(feeds);
  // Note: the harvester announced its own baseline for the same prefix; put
  // ours back.
  announce(std::nullopt, std::nullopt);

  EventStats poison_stats;
  EventStats primitive_stats;

  std::size_t n = 0;
  for (const AsId target : targets) {
    if (n++ >= 20) break;

    // Who routes through the target pre-event?
    std::vector<AsId> via;
    for (const AsId as : world.graph().as_ids()) {
      if (const auto* r = world.engine().best_route(as, prefix)) {
        if (bgp::path_traverses(r->path, target, origin)) via.push_back(as);
      }
    }
    if (via.empty()) continue;

    const auto run_event = [&](bool use_primitive, EventStats& stats) {
      world.engine().reset_counters();
      const auto notified_before =
          world.engine().speaker(target).avoid_notifications();
      if (use_primitive) {
        announce(bgp::AvoidHint{.as = target}, std::nullopt);
      } else {
        announce(std::nullopt, target);
      }
      std::size_t moved = 0;
      std::size_t cut = 0;
      for (const AsId as : world.graph().as_ids()) {
        if (as == origin) continue;
        const auto* r = world.engine().best_route(as, prefix);
        if (r == nullptr) {
          ++cut;
          continue;
        }
        if (std::find(via.begin(), via.end(), as) != via.end() &&
            !bgp::path_traverses(r->path, target, origin) && as != target) {
          ++moved;
        }
      }
      stats.moved.add(static_cast<double>(moved));
      stats.cut_off.add(static_cast<double>(cut));
      stats.messages.add(static_cast<double>(world.engine().total_messages()));
      if (use_primitive &&
          world.engine().speaker(target).avoid_notifications() >
              notified_before) {
        ++stats.notified;
      }
      ++stats.events;
      announce(std::nullopt, std::nullopt);  // revert
    };

    run_event(/*use_primitive=*/false, poison_stats);
    run_event(/*use_primitive=*/true, primitive_stats);
  }

  bench::section("Per-event averages over " +
                 std::to_string(poison_stats.events) + " problem events");
  std::printf("  %-34s %-14s %-14s\n", "", "poisoning", "AVOID_PROBLEM");
  std::printf("  %-34s %-14.1f %-14.1f\n", "ASes moved off the problem AS",
              poison_stats.moved.mean(), primitive_stats.moved.mean());
  std::printf("  %-34s %-14.1f %-14.1f\n", "ASes cut off from the prefix",
              poison_stats.cut_off.mean(), primitive_stats.cut_off.mean());
  std::printf("  %-34s %-14.1f %-14.1f\n", "update messages per event",
              poison_stats.messages.mean(), primitive_stats.messages.mean());
  std::printf("  %-34s %-14s %-14s\n", "problem AS notified",
              "border routers log the poison",
              primitive_stats.notified == primitive_stats.events ? "always"
                                                                 : "sometimes");

  jr->headline("events", static_cast<double>(poison_stats.events));
  jr->headline("ases_moved_poisoning", poison_stats.moved.mean());
  jr->headline("ases_moved_primitive", primitive_stats.moved.mean());
  jr->headline("ases_cut_off_poisoning", poison_stats.cut_off.mean());
  jr->headline("ases_cut_off_primitive", primitive_stats.cut_off.mean());
  jr->headline("messages_per_event_poisoning", poison_stats.messages.mean());
  jr->headline("messages_per_event_primitive", primitive_stats.messages.mean());

  bench::section("Reading");
  std::printf(
      "  The primitive achieves the same avoidance with no captive cut-offs\n"
      "  (no sentinel needed) and comparable churn — the paper's argument\n"
      "  that a first-class AVOID_PROBLEM mechanism (or MIRO-style paths)\n"
      "  deserves protocol support; poisoning is its deployable shadow.\n");
  return 0;
}
