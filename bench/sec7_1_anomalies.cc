// §7.1 reproduction — poisoning anomalies and countermeasures:
//  * ASes that allow one occurrence of their own ASN (AS286-style): a
//    single poison is ignored, a double poison (O-A-A-O) works;
//  * ASes that disable loop detection entirely: unpoisonable (stubs only in
//    practice — and stubs never need poisoning);
//  * Cogent-style peer filters: customers' announcements carrying a peer of
//    the filtering AS are dropped, shrinking poisoning's reach (paper: via
//    other providers, 76% of collector peers still found alternates);
//  * sentinel ablation: captives keep/lose backup connectivity.
#include <cstdio>

#include "bench/bench_util.h"
#include "workload/poison_experiment.h"
#include "workload/sim_world.h"

using namespace lg;
using topo::AsId;

namespace {

// Fraction of feed peers that had routed via `target` and found an
// alternate after poisoning.
double alternate_fraction(workload::PoisonExperiment& experiment,
                          const std::vector<AsId>& feeds, AsId target) {
  const auto outcome = experiment.poison_and_measure(target, feeds);
  std::size_t using_target = 0;
  std::size_t found = 0;
  for (const auto& peer : outcome.peers) {
    if (!peer.routed_via_poisoned_before) continue;
    ++using_target;
    if (peer.has_route_after && peer.avoids_poisoned_after) ++found;
  }
  return using_target == 0 ? -1.0
                           : static_cast<double>(found) /
                                 static_cast<double>(using_target);
}

}  // namespace

int main() {
  bench::header("Section 7.1", "Poisoning anomalies and their workarounds");
  bench::JsonReport jr("sec7_1_anomalies");
  jr->set_config("feed_ases", 30.0);
  jr->set_config("filter_measurements", 8.0);

  workload::SimWorld world;
  AsId origin = topo::kInvalidAs;
  for (const AsId as : world.topology().stubs) {
    if (world.graph().providers(as).size() >= 2) {
      origin = as;
      break;
    }
  }
  workload::PoisonExperiment experiment(world, origin);
  experiment.setup();
  const auto feeds = world.feed_ases(30);
  const auto candidates = experiment.harvest_poison_candidates(feeds);
  const auto& prefix = experiment.production_prefix();

  // ---- (a) loop-threshold anomalies ----
  bench::section("(a) AS accepting one occurrence of its own ASN (AS286)");
  const AsId lenient = candidates.front();
  world.engine().speaker(lenient).mutable_config().loop_threshold = 2;

  experiment.remediator().poison(lenient);
  world.converge();
  const bool single_poison_ignored =
      world.engine().best_route(lenient, prefix) != nullptr;
  experiment.remediator().poison_path({lenient, lenient});
  world.converge();
  const bool double_poison_works =
      world.engine().best_route(lenient, prefix) == nullptr;
  experiment.remediator().unpoison();
  world.converge();
  world.engine().speaker(lenient).mutable_config().loop_threshold = 1;

  bench::compare_row("single poison ignored by lenient AS", "yes",
                     single_poison_ignored ? "yes" : "no");
  bench::compare_row("double poison (O-A-A-O) takes effect", "yes",
                     double_poison_works ? "yes" : "no");

  // ---- (b) loop detection disabled ----
  bench::section("(b) AS with loop detection disabled");
  world.engine().speaker(lenient).mutable_config().loop_detection_disabled =
      true;
  experiment.remediator().poison_path({lenient, lenient, lenient});
  world.converge();
  bench::compare_row(
      "unpoisonable even with repeated ASN", "yes (stubs only in practice)",
      world.engine().best_route(lenient, prefix) != nullptr ? "yes" : "no");
  experiment.remediator().unpoison();
  world.converge();
  world.engine().speaker(lenient).mutable_config().loop_detection_disabled =
      false;

  // ---- (c) Cogent-style peer filters ----
  bench::section("(c) Peer filters on customer routes (Cogent-style)");
  // Install the filter at the highest-degree transit; poison candidates and
  // compare alternate-discovery with the unfiltered world.
  const AsId filterer = world.feed_ases(1).front();
  double unfiltered_sum = 0.0;
  double filtered_sum = 0.0;
  int measured = 0;
  for (std::size_t i = 1; i < candidates.size() && measured < 8; ++i) {
    const AsId target = candidates[i];
    if (target == filterer) continue;
    const double before = alternate_fraction(experiment, feeds, target);
    world.engine()
        .speaker(filterer)
        .mutable_config()
        .reject_customer_routes_containing_my_peers = true;
    const double after = alternate_fraction(experiment, feeds, target);
    world.engine()
        .speaker(filterer)
        .mutable_config()
        .reject_customer_routes_containing_my_peers = false;
    if (before < 0.0 || after < 0.0) continue;
    unfiltered_sum += before;
    filtered_sum += after;
    ++measured;
  }
  if (measured > 0) {
    bench::compare_row("peers finding alternates, no filter", "77%",
                       util::pct(unfiltered_sum / measured));
    bench::compare_row("peers finding alternates, with peer filter", "76%",
                       util::pct(filtered_sum / measured),
                       "(filtering narrows propagation slightly)");
  }

  // ---- (d) sentinel ablation ----
  bench::section("(d) Sentinel ablation: captive connectivity during poison");
  // Count captive ASes (no production route while poisoned) and how many
  // keep data-plane connectivity thanks to the sentinel.
  const AsId target = candidates.front();
  experiment.remediator().poison(target);
  world.converge();
  std::size_t captives = 0;
  std::size_t captives_with_backup = 0;
  const auto origin_host = topo::AddressPlan::production_host(origin);
  for (const AsId as : world.graph().as_ids()) {
    if (as == origin) continue;
    if (world.engine().best_route(as, prefix) != nullptr) continue;
    ++captives;
    if (world.dataplane().forward(as, origin_host).delivered()) {
      ++captives_with_backup;
    }
  }
  experiment.remediator().unpoison();
  world.converge();
  bench::kv("captive ASes while poisoned", std::to_string(captives));
  bench::compare_row("captives retaining delivery via sentinel",
                     "all (Backup property)",
                     captives ? util::pct(static_cast<double>(captives_with_backup) /
                                          static_cast<double>(captives))
                              : "n/a");

  jr->headline("single_poison_ignored", single_poison_ignored ? 1.0 : 0.0);
  jr->headline("double_poison_works", double_poison_works ? 1.0 : 0.0);
  if (measured > 0) {
    jr->headline("frac_alternates_no_filter", unfiltered_sum / measured);
    jr->headline("frac_alternates_with_filter", filtered_sum / measured);
  }
  jr->headline("captive_ases", static_cast<double>(captives));
  if (captives) {
    jr->headline("frac_captives_with_backup",
                 static_cast<double>(captives_with_backup) /
                     static_cast<double>(captives));
  }
  return 0;
}
