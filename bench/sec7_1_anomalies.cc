// §7.1 reproduction — poisoning anomalies and countermeasures:
//  * ASes that allow one occurrence of their own ASN (AS286-style): a
//    single poison is ignored, a double poison (O-A-A-O) works;
//  * ASes that disable loop detection entirely: unpoisonable (stubs only in
//    practice — and stubs never need poisoning);
//  * Cogent-style peer filters: customers' announcements carrying a peer of
//    the filtering AS are dropped, shrinking poisoning's reach (paper: via
//    other providers, 76% of collector peers still found alternates);
//  * sentinel ablation: captives keep/lose backup connectivity.
//
// Parallel structure (lg::run::TrialRunner): trial 0 runs the
// order-dependent anomaly sequence (a)/(b)/(d) on its own world; the filter
// study (c) is split into batches, each measuring two poison targets
// before/after installing the peer filter on a fresh — deterministic, hence
// identical — world. Merged in index order: output is byte-identical for
// any LG_THREADS value.
#include <cstdio>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "run/trial_runner.h"
#include "workload/poison_experiment.h"
#include "workload/sim_world.h"

using namespace lg;
using topo::AsId;

namespace {

constexpr std::size_t kFilterBatches = 4;
constexpr std::size_t kTargetsPerBatch = 2;

// Fraction of feed peers that had routed via `target` and found an
// alternate after poisoning.
double alternate_fraction(workload::PoisonExperiment& experiment,
                          const std::vector<AsId>& feeds, AsId target) {
  const auto outcome = experiment.poison_and_measure(target, feeds);
  std::size_t using_target = 0;
  std::size_t found = 0;
  for (const auto& peer : outcome.peers) {
    if (!peer.routed_via_poisoned_before) continue;
    ++using_target;
    if (peer.has_route_after && peer.avoids_poisoned_after) ++found;
  }
  return using_target == 0 ? -1.0
                           : static_cast<double>(found) /
                                 static_cast<double>(using_target);
}

struct TrialResult {
  // Trial 0: anomaly + sentinel sections.
  bool single_poison_ignored = false;
  bool double_poison_works = false;
  bool unpoisonable = false;
  std::size_t captives = 0;
  std::size_t captives_with_backup = 0;
  // Filter batches: (no-filter, with-filter) alternate fractions, negative
  // when no peer routed via the target.
  std::vector<std::pair<double, double>> filter_pairs;
};

// (a), (b), (d): order-dependent toggles on a single world.
TrialResult run_anomaly_trial() {
  TrialResult result;
  workload::SimWorld world;
  AsId origin = topo::kInvalidAs;
  for (const AsId as : world.topology().stubs) {
    if (world.graph().providers(as).size() >= 2) {
      origin = as;
      break;
    }
  }
  workload::PoisonExperiment experiment(world, origin);
  experiment.setup();
  const auto feeds = world.feed_ases(30);
  const auto candidates = experiment.harvest_poison_candidates(feeds);
  const auto& prefix = experiment.production_prefix();

  // ---- (a) loop-threshold anomalies ----
  const AsId lenient = candidates.front();
  world.engine().speaker(lenient).mutable_config().loop_threshold = 2;

  experiment.remediator().poison(lenient);
  world.converge();
  result.single_poison_ignored =
      world.engine().best_route(lenient, prefix) != nullptr;
  experiment.remediator().poison_path({lenient, lenient});
  world.converge();
  result.double_poison_works =
      world.engine().best_route(lenient, prefix) == nullptr;
  experiment.remediator().unpoison();
  world.converge();
  world.engine().speaker(lenient).mutable_config().loop_threshold = 1;

  // ---- (b) loop detection disabled ----
  world.engine().speaker(lenient).mutable_config().loop_detection_disabled =
      true;
  experiment.remediator().poison_path({lenient, lenient, lenient});
  world.converge();
  result.unpoisonable =
      world.engine().best_route(lenient, prefix) != nullptr;
  experiment.remediator().unpoison();
  world.converge();
  world.engine().speaker(lenient).mutable_config().loop_detection_disabled =
      false;

  // ---- (d) sentinel ablation ----
  const AsId target = candidates.front();
  experiment.remediator().poison(target);
  world.converge();
  const auto origin_host = topo::AddressPlan::production_host(origin);
  for (const AsId as : world.graph().as_ids()) {
    if (as == origin) continue;
    if (world.engine().best_route(as, prefix) != nullptr) continue;
    ++result.captives;
    if (world.dataplane().forward(as, origin_host).delivered()) {
      ++result.captives_with_backup;
    }
  }
  experiment.remediator().unpoison();
  world.converge();
  return result;
}

// (c): two targets per batch, each measured without and with the peer
// filter installed at the highest-degree transit. The worlds are identical
// across batches (same deterministic config), so slicing the target list by
// batch index reproduces one sequential sweep.
TrialResult run_filter_trial(std::size_t batch) {
  TrialResult result;
  workload::SimWorld world;
  AsId origin = topo::kInvalidAs;
  for (const AsId as : world.topology().stubs) {
    if (world.graph().providers(as).size() >= 2) {
      origin = as;
      break;
    }
  }
  workload::PoisonExperiment experiment(world, origin);
  experiment.setup();
  const auto feeds = world.feed_ases(30);
  const auto candidates = experiment.harvest_poison_candidates(feeds);
  const AsId filterer = world.feed_ases(1).front();

  std::vector<AsId> targets;
  for (std::size_t i = 1;
       i < candidates.size() &&
       targets.size() < kFilterBatches * kTargetsPerBatch;
       ++i) {
    if (candidates[i] != filterer) targets.push_back(candidates[i]);
  }
  auto& filter_flag = world.engine()
                          .speaker(filterer)
                          .mutable_config()
                          .reject_customer_routes_containing_my_peers;
  const std::size_t begin = batch * kTargetsPerBatch;
  for (std::size_t i = begin;
       i < begin + kTargetsPerBatch && i < targets.size(); ++i) {
    const double before = alternate_fraction(experiment, feeds, targets[i]);
    filter_flag = true;
    const double after = alternate_fraction(experiment, feeds, targets[i]);
    filter_flag = false;
    result.filter_pairs.emplace_back(before, after);
  }
  return result;
}

}  // namespace

int main() {
  bench::header("Section 7.1", "Poisoning anomalies and their workarounds");
  bench::JsonReport jr("sec7_1_anomalies");
  jr->set_config("feed_ases", 30.0);
  jr->set_config("filter_measurements",
                 static_cast<double>(kFilterBatches * kTargetsPerBatch));

  constexpr std::size_t kTrials = 1 + kFilterBatches;
  run::TrialRunner runner;
  std::vector<TrialResult> results;
  {
    bench::WallClock wc("sec7_1_anomalies", kTrials, runner.threads());
    results = runner.run(kTrials, [](run::TrialContext& ctx) {
      if (ctx.index == 0) return run_anomaly_trial();
      return run_filter_trial(ctx.index - 1);
    });
  }
  const TrialResult& anomalies = results.front();

  bench::section("(a) AS accepting one occurrence of its own ASN (AS286)");
  bench::compare_row("single poison ignored by lenient AS", "yes",
                     anomalies.single_poison_ignored ? "yes" : "no");
  bench::compare_row("double poison (O-A-A-O) takes effect", "yes",
                     anomalies.double_poison_works ? "yes" : "no");

  bench::section("(b) AS with loop detection disabled");
  bench::compare_row(
      "unpoisonable even with repeated ASN", "yes (stubs only in practice)",
      anomalies.unpoisonable ? "yes" : "no");

  bench::section("(c) Peer filters on customer routes (Cogent-style)");
  double unfiltered_sum = 0.0;
  double filtered_sum = 0.0;
  int measured = 0;
  for (std::size_t i = 1; i < kTrials; ++i) {
    for (const auto& [before, after] : results[i].filter_pairs) {
      if (before < 0.0 || after < 0.0) continue;
      unfiltered_sum += before;
      filtered_sum += after;
      ++measured;
    }
  }
  if (measured > 0) {
    bench::compare_row("peers finding alternates, no filter", "77%",
                       util::pct(unfiltered_sum / measured));
    bench::compare_row("peers finding alternates, with peer filter", "76%",
                       util::pct(filtered_sum / measured),
                       "(filtering narrows propagation slightly)");
  }

  bench::section("(d) Sentinel ablation: captive connectivity during poison");
  bench::kv("captive ASes while poisoned", std::to_string(anomalies.captives));
  bench::compare_row(
      "captives retaining delivery via sentinel", "all (Backup property)",
      anomalies.captives
          ? util::pct(static_cast<double>(anomalies.captives_with_backup) /
                      static_cast<double>(anomalies.captives))
          : "n/a");

  jr->headline("single_poison_ignored",
               anomalies.single_poison_ignored ? 1.0 : 0.0);
  jr->headline("double_poison_works", anomalies.double_poison_works ? 1.0 : 0.0);
  if (measured > 0) {
    jr->headline("frac_alternates_no_filter", unfiltered_sum / measured);
    jr->headline("frac_alternates_with_filter", filtered_sum / measured);
  }
  jr->headline("captive_ases", static_cast<double>(anomalies.captives));
  if (anomalies.captives) {
    jr->headline("frac_captives_with_backup",
                 static_cast<double>(anomalies.captives_with_backup) /
                     static_cast<double>(anomalies.captives));
  }
  return 0;
}
