// Figure 5 reproduction: residual outage duration after a problem has
// already persisted X minutes — the evidence that long-lived outages keep
// living, which justifies triggering route exploration (§4.2).
//
// Paper: median outage 90 s, but of the 12% of problems >= 5 minutes, 51%
// last at least another 5; of those reaching 10 minutes, 68% last >= 5 more.
#include <cstdio>

#include "bench/bench_util.h"
#include "run/trial_runner.h"
#include "util/stats.h"
#include "workload/outages.h"

int main() {
  using namespace lg;
  bench::header("Figure 5",
                "Residual outage duration (minutes) given elapsed time");
  bench::JsonReport jr("fig5_residual_duration");
  constexpr std::size_t kReplicates = 16;
  jr->set_config("num_outages", 10308.0);
  jr->set_config("replicate_studies", static_cast<double>(kReplicates));

  // Canonical study at trial 0 (historical seed), re-seeded replicates after
  // it; the trial runner fans them out across cores deterministically.
  run::TrialRunner runner;
  std::vector<util::EmpiricalCdf> studies;
  {
    bench::WallClock wc("fig5_residual_duration", kReplicates,
                        runner.threads());
    studies = runner.run(kReplicates, [](run::TrialContext& ctx) {
      const std::uint64_t seed = ctx.index == 0 ? 20100720ULL : ctx.seed;
      return workload::generate_outage_study(10308, {}, seed);
    });
  }
  const auto& study = studies.front();

  bench::section("Residual duration per elapsed minutes");
  std::printf("  %-10s %-12s %-12s %-12s %-10s\n", "elapsed", "mean", "median",
              "25th pct", "surviving");
  const auto rows = workload::residual_duration_rows(
      study, {0, 2, 5, 10, 15, 20, 25, 30});
  for (const auto& row : rows) {
    std::printf("  %-10.0f %-12.1f %-12.1f %-12.1f %-10zu\n",
                row.elapsed_minutes, row.mean_residual_min,
                row.median_residual_min, row.p25_residual_min, row.surviving);
  }

  bench::section("Persistence statistics vs paper (§4.2)");
  const double n5 = static_cast<double>(study.count_above(300.0));
  const double n10 = static_cast<double>(study.count_above(600.0));
  const double n15 = static_cast<double>(study.count_above(900.0));
  const double n = static_cast<double>(study.count());
  bench::compare_row("problems persisting >= 5 min", "12%",
                     util::pct(n5 / n));
  bench::compare_row(">=5-min problems lasting >= 5 more min", "51%",
                     util::pct(n10 / n5));
  bench::compare_row(">=10-min problems lasting >= 5 more min", "68%",
                     util::pct(n15 / n10));

  // The punchline the system builds on: if LIFEGUARD needs ~5 minutes to
  // detect+isolate and ~2 minutes to reroute, how much of the total
  // unavailability is still addressable?
  bench::section("Addressable unavailability");
  const double addressable = study.mass_fraction_above(7.0 * 60.0);
  bench::compare_row(
      "unavailability avoidable acting at 5 min + 2 min converge", "up to 80%",
      util::pct(addressable));

  bench::section("Replication stability (independently re-seeded studies)");
  util::Summary rep_persist, rep_addressable;
  for (std::size_t i = 1; i < studies.size(); ++i) {
    const double rn = static_cast<double>(studies[i].count());
    rep_persist.add(static_cast<double>(studies[i].count_above(300.0)) / rn);
    rep_addressable.add(studies[i].mass_fraction_above(7.0 * 60.0));
  }
  bench::kv("replicate studies", std::to_string(rep_persist.count()));
  std::printf("  %-40s %-10s %-10s %-10s\n", "statistic", "min", "mean",
              "max");
  std::printf("  %-40s %-10.3f %-10.3f %-10.3f\n",
              "frac persisting >= 5 min", rep_persist.min(),
              rep_persist.mean(), rep_persist.max());
  std::printf("  %-40s %-10.3f %-10.3f %-10.3f\n",
              "addressable unavailability", rep_addressable.min(),
              rep_addressable.mean(), rep_addressable.max());

  jr->headline("frac_persisting_geq_5min", n5 / n);
  jr->headline("frac_5min_lasting_5_more", n10 / n5);
  jr->headline("frac_10min_lasting_5_more", n15 / n10);
  jr->headline("addressable_unavailability", addressable);
  jr->headline("replicate_frac_persisting_mean", rep_persist.mean());
  jr->headline("replicate_addressable_mean", rep_addressable.mean());
  return 0;
}
