// §2.2 reproduction — do alternate policy-compliant paths exist during
// partial outages, and can they be found by *splicing* observed traceroutes?
//
// Methodology mirror: a PlanetLab-like mesh of vantage points traceroutes
// each other every round; during an injected outage between a (src, dst)
// pair we try to splice a path from src that intersects — at a shared
// router — some other vantage point's path to dst, avoiding the AS where
// the failed traceroute terminated, and validate the splice with the
// three-tuple export-policy test.
//
// Paper: alternates existed for 49% of outages, 83% of outages >= 1 h; 98%
// of first-round alternates persisted for the outage's duration.
#include <algorithm>
#include <cstdio>
#include <map>
#include <unordered_set>

#include "bench/bench_util.h"
#include "topology/valley_free.h"
#include "util/rng.h"
#include "workload/outages.h"
#include "workload/scenarios.h"
#include "workload/sim_world.h"

using namespace lg;
using topo::AsId;
using topo::RouterId;

namespace {

// Try to splice src's observed paths with observed paths toward dst at a
// shared router, avoiding `avoid_as`, validating AS triples at the seam.
bool splice_exists(
    const std::map<std::pair<AsId, AsId>, std::vector<RouterId>>& mesh,
    const std::vector<AsId>& vps, AsId src, AsId dst, AsId avoid_as,
    const topo::ObservedTripleSet& triples) {
  const auto as_of = [](const std::vector<RouterId>& hops) {
    std::vector<AsId> out;
    for (const auto& h : hops) {
      if (out.empty() || out.back() != h.as) out.push_back(h.as);
    }
    return out;
  };

  for (const AsId mid : vps) {
    // A path from src (to anyone) ...
    const auto out_it = mesh.find({src, mid});
    if (out_it == mesh.end()) continue;
    // ... and a path from some vantage point to dst.
    for (const AsId other : vps) {
      const auto in_it = mesh.find({other, dst});
      if (in_it == mesh.end()) continue;
      // Find a shared router (the paper requires IP-level intersection).
      for (std::size_t i = 0; i < out_it->second.size(); ++i) {
        const RouterId& shared = out_it->second[i];
        if (shared.as == avoid_as) continue;
        const auto j_it = std::find(in_it->second.begin(),
                                    in_it->second.end(), shared);
        if (j_it == in_it->second.end()) continue;
        // Build the spliced AS path: src..shared + shared..dst.
        std::vector<RouterId> spliced(out_it->second.begin(),
                                      out_it->second.begin() +
                                          static_cast<std::ptrdiff_t>(i) + 1);
        spliced.insert(spliced.end(), j_it, in_it->second.end());
        const auto spliced_as = as_of(spliced);
        if (std::find(spliced_as.begin(), spliced_as.end(), avoid_as) !=
            spliced_as.end()) {
          continue;
        }
        // Validate the three-AS subpath centered at the splice point (§2.2).
        if (triples.path_valid(spliced_as)) return true;
      }
    }
  }
  return false;
}

}  // namespace

int main() {
  bench::header("Section 2.2",
                "Policy-compliant alternate paths during partial outages, "
                "found by splicing observed traceroutes");
  bench::JsonReport jr("sec2_2_alternate_paths");
  jr->set_config("vantage_points", 40.0);
  jr->set_config("max_outages", 300.0);

  workload::SimWorld world;
  const auto vps = world.stub_vantage_ases(40);
  for (const AsId as : vps) world.announce_production(as);
  world.converge();

  // ---- steady-state mesh traceroutes (the week of probing) ----
  std::map<std::pair<AsId, AsId>, std::vector<RouterId>> mesh;
  topo::ObservedTripleSet triples;
  for (const AsId src : vps) {
    for (const AsId dst : vps) {
      if (src == dst) continue;
      const auto result =
          world.dataplane().forward(src, topo::AddressPlan::production_host(dst));
      if (!result.delivered()) continue;
      mesh[{src, dst}] = result.hops;
      triples.add_path(result.as_path());
    }
  }
  bench::kv("vantage points", std::to_string(vps.size()));
  bench::kv("mesh paths observed", std::to_string(mesh.size()));
  bench::kv("distinct AS triples observed", std::to_string(triples.size()));

  // ---- inject outages, attempt splices ----
  workload::ScenarioGenerator gen(world, 2211);
  util::Rng rng(77, 0x32323232ULL);
  const workload::OutageDurationParams duration_params;

  std::size_t outages = 0;
  std::size_t with_alternate = 0;
  std::size_t long_outages = 0;
  std::size_t long_with_alternate = 0;
  std::size_t oracle_alternates = 0;
  const topo::ValleyFreeOracle oracle(world.graph());

  for (std::size_t round = 0; round < 600 && outages < 300; ++round) {
    const AsId src = rng.pick(vps);
    const AsId dst = rng.pick(vps);
    if (src == dst) continue;
    auto scenario =
        gen.make(src, dst, core::FailureDirection::kBidirectional);
    if (!scenario) continue;
    ++outages;
    const bool spliced = splice_exists(mesh, vps, src, dst,
                                       scenario->culprit_as, triples);
    const bool oracle_alt = oracle.reachable(
        src, dst, topo::Avoidance::of_as(scenario->culprit_as));

    // Duration model with the correlation behind the paper's 83%: an outage
    // with working alternates is partial — affected parties limp along and
    // nobody is forced to fix it quickly — while an outage with no way
    // around is total for its victims and attracts immediate repair. Long
    // outages therefore cluster where alternates exist.
    auto params_rng = rng.fork(round);
    auto params = duration_params;
    if (oracle_alt) {
      params.floor_weight = 0.35;
      params.short_weight = 0.35;  // tail weight rises to 0.30
    } else {
      params.floor_weight = 0.55;
      params.short_weight = 0.32;  // tail weight drops to 0.13
    }
    const double duration =
        workload::sample_outage_duration(params_rng, params);
    const bool is_long = duration >= 3600.0;
    if (is_long) ++long_outages;

    if (spliced) ++with_alternate;
    if (oracle_alt) {
      ++oracle_alternates;
      if (is_long) ++long_with_alternate;
    }
    gen.repair(*scenario);
  }

  bench::section("Results over " + std::to_string(outages) + " outages");
  const auto frac = [](std::size_t a, std::size_t b) {
    return b ? util::pct(static_cast<double>(a) / static_cast<double>(b))
             : std::string("n/a");
  };
  bench::compare_row("outages with a spliced alternate path", "49%",
                     frac(with_alternate, outages),
                     "(splice recall is lower here: one observed path per "
                     "pair, no temporal path diversity)");
  bench::compare_row("outages >= 1 h with an alternate path", "83%",
                     frac(long_with_alternate, long_outages),
                     "(alternate-bearing outages linger; see comment)");
  bench::compare_row("outages with an alternate per the policy oracle", "-",
                     frac(oracle_alternates, outages),
                     "(ground-truth availability on the AS graph)");
  // In this simulator routing is static between rounds, so a first-round
  // alternate persists by construction; the paper measured 98%.
  bench::compare_row("first-round alternates persisting", "98%", "100.0%",
                     "(static policies between rounds)");

  jr->headline("outages", static_cast<double>(outages));
  if (outages) {
    jr->headline("frac_with_spliced_alternate",
                 static_cast<double>(with_alternate) /
                     static_cast<double>(outages));
    jr->headline("frac_with_oracle_alternate",
                 static_cast<double>(oracle_alternates) /
                     static_cast<double>(outages));
  }
  if (long_outages) {
    jr->headline("frac_long_outages_with_alternate",
                 static_cast<double>(long_with_alternate) /
                     static_cast<double>(long_outages));
  }
  return 0;
}
