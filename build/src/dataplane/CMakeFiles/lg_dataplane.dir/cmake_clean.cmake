file(REMOVE_RECURSE
  "CMakeFiles/lg_dataplane.dir/failures.cc.o"
  "CMakeFiles/lg_dataplane.dir/failures.cc.o.d"
  "CMakeFiles/lg_dataplane.dir/forwarding.cc.o"
  "CMakeFiles/lg_dataplane.dir/forwarding.cc.o.d"
  "CMakeFiles/lg_dataplane.dir/router_net.cc.o"
  "CMakeFiles/lg_dataplane.dir/router_net.cc.o.d"
  "liblg_dataplane.a"
  "liblg_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lg_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
