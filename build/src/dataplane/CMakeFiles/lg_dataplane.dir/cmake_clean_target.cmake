file(REMOVE_RECURSE
  "liblg_dataplane.a"
)
