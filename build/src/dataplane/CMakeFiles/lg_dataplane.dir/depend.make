# Empty dependencies file for lg_dataplane.
# This may be replaced when dependencies are built.
