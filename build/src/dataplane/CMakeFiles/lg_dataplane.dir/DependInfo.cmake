
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataplane/failures.cc" "src/dataplane/CMakeFiles/lg_dataplane.dir/failures.cc.o" "gcc" "src/dataplane/CMakeFiles/lg_dataplane.dir/failures.cc.o.d"
  "/root/repo/src/dataplane/forwarding.cc" "src/dataplane/CMakeFiles/lg_dataplane.dir/forwarding.cc.o" "gcc" "src/dataplane/CMakeFiles/lg_dataplane.dir/forwarding.cc.o.d"
  "/root/repo/src/dataplane/router_net.cc" "src/dataplane/CMakeFiles/lg_dataplane.dir/router_net.cc.o" "gcc" "src/dataplane/CMakeFiles/lg_dataplane.dir/router_net.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bgp/CMakeFiles/lg_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/lg_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
