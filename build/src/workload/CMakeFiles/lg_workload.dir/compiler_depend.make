# Empty compiler generated dependencies file for lg_workload.
# This may be replaced when dependencies are built.
