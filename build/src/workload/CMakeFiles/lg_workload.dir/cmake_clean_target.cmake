file(REMOVE_RECURSE
  "liblg_workload.a"
)
