file(REMOVE_RECURSE
  "CMakeFiles/lg_workload.dir/load_model.cc.o"
  "CMakeFiles/lg_workload.dir/load_model.cc.o.d"
  "CMakeFiles/lg_workload.dir/outages.cc.o"
  "CMakeFiles/lg_workload.dir/outages.cc.o.d"
  "CMakeFiles/lg_workload.dir/poison_experiment.cc.o"
  "CMakeFiles/lg_workload.dir/poison_experiment.cc.o.d"
  "CMakeFiles/lg_workload.dir/scenarios.cc.o"
  "CMakeFiles/lg_workload.dir/scenarios.cc.o.d"
  "CMakeFiles/lg_workload.dir/sim_world.cc.o"
  "CMakeFiles/lg_workload.dir/sim_world.cc.o.d"
  "liblg_workload.a"
  "liblg_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lg_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
