file(REMOVE_RECURSE
  "liblg_util.a"
)
