file(REMOVE_RECURSE
  "CMakeFiles/lg_util.dir/logging.cc.o"
  "CMakeFiles/lg_util.dir/logging.cc.o.d"
  "CMakeFiles/lg_util.dir/rng.cc.o"
  "CMakeFiles/lg_util.dir/rng.cc.o.d"
  "CMakeFiles/lg_util.dir/scheduler.cc.o"
  "CMakeFiles/lg_util.dir/scheduler.cc.o.d"
  "CMakeFiles/lg_util.dir/stats.cc.o"
  "CMakeFiles/lg_util.dir/stats.cc.o.d"
  "CMakeFiles/lg_util.dir/strings.cc.o"
  "CMakeFiles/lg_util.dir/strings.cc.o.d"
  "liblg_util.a"
  "liblg_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lg_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
