# Empty compiler generated dependencies file for lg_util.
# This may be replaced when dependencies are built.
