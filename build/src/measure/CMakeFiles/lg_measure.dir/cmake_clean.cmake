file(REMOVE_RECURSE
  "CMakeFiles/lg_measure.dir/probes.cc.o"
  "CMakeFiles/lg_measure.dir/probes.cc.o.d"
  "CMakeFiles/lg_measure.dir/responsiveness.cc.o"
  "CMakeFiles/lg_measure.dir/responsiveness.cc.o.d"
  "liblg_measure.a"
  "liblg_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lg_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
