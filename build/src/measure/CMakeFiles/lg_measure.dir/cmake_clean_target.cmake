file(REMOVE_RECURSE
  "liblg_measure.a"
)
