# Empty compiler generated dependencies file for lg_measure.
# This may be replaced when dependencies are built.
