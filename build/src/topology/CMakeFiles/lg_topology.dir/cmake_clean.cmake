file(REMOVE_RECURSE
  "CMakeFiles/lg_topology.dir/addressing.cc.o"
  "CMakeFiles/lg_topology.dir/addressing.cc.o.d"
  "CMakeFiles/lg_topology.dir/as_graph.cc.o"
  "CMakeFiles/lg_topology.dir/as_graph.cc.o.d"
  "CMakeFiles/lg_topology.dir/generator.cc.o"
  "CMakeFiles/lg_topology.dir/generator.cc.o.d"
  "CMakeFiles/lg_topology.dir/io.cc.o"
  "CMakeFiles/lg_topology.dir/io.cc.o.d"
  "CMakeFiles/lg_topology.dir/prefix.cc.o"
  "CMakeFiles/lg_topology.dir/prefix.cc.o.d"
  "CMakeFiles/lg_topology.dir/valley_free.cc.o"
  "CMakeFiles/lg_topology.dir/valley_free.cc.o.d"
  "liblg_topology.a"
  "liblg_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lg_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
