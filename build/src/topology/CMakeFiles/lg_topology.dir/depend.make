# Empty dependencies file for lg_topology.
# This may be replaced when dependencies are built.
