file(REMOVE_RECURSE
  "liblg_topology.a"
)
