
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/addressing.cc" "src/topology/CMakeFiles/lg_topology.dir/addressing.cc.o" "gcc" "src/topology/CMakeFiles/lg_topology.dir/addressing.cc.o.d"
  "/root/repo/src/topology/as_graph.cc" "src/topology/CMakeFiles/lg_topology.dir/as_graph.cc.o" "gcc" "src/topology/CMakeFiles/lg_topology.dir/as_graph.cc.o.d"
  "/root/repo/src/topology/generator.cc" "src/topology/CMakeFiles/lg_topology.dir/generator.cc.o" "gcc" "src/topology/CMakeFiles/lg_topology.dir/generator.cc.o.d"
  "/root/repo/src/topology/io.cc" "src/topology/CMakeFiles/lg_topology.dir/io.cc.o" "gcc" "src/topology/CMakeFiles/lg_topology.dir/io.cc.o.d"
  "/root/repo/src/topology/prefix.cc" "src/topology/CMakeFiles/lg_topology.dir/prefix.cc.o" "gcc" "src/topology/CMakeFiles/lg_topology.dir/prefix.cc.o.d"
  "/root/repo/src/topology/valley_free.cc" "src/topology/CMakeFiles/lg_topology.dir/valley_free.cc.o" "gcc" "src/topology/CMakeFiles/lg_topology.dir/valley_free.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
