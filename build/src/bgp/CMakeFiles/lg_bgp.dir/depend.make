# Empty dependencies file for lg_bgp.
# This may be replaced when dependencies are built.
