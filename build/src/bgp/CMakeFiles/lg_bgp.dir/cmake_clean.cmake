file(REMOVE_RECURSE
  "CMakeFiles/lg_bgp.dir/collector.cc.o"
  "CMakeFiles/lg_bgp.dir/collector.cc.o.d"
  "CMakeFiles/lg_bgp.dir/engine.cc.o"
  "CMakeFiles/lg_bgp.dir/engine.cc.o.d"
  "CMakeFiles/lg_bgp.dir/speaker.cc.o"
  "CMakeFiles/lg_bgp.dir/speaker.cc.o.d"
  "CMakeFiles/lg_bgp.dir/types.cc.o"
  "CMakeFiles/lg_bgp.dir/types.cc.o.d"
  "liblg_bgp.a"
  "liblg_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lg_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
