
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgp/collector.cc" "src/bgp/CMakeFiles/lg_bgp.dir/collector.cc.o" "gcc" "src/bgp/CMakeFiles/lg_bgp.dir/collector.cc.o.d"
  "/root/repo/src/bgp/engine.cc" "src/bgp/CMakeFiles/lg_bgp.dir/engine.cc.o" "gcc" "src/bgp/CMakeFiles/lg_bgp.dir/engine.cc.o.d"
  "/root/repo/src/bgp/speaker.cc" "src/bgp/CMakeFiles/lg_bgp.dir/speaker.cc.o" "gcc" "src/bgp/CMakeFiles/lg_bgp.dir/speaker.cc.o.d"
  "/root/repo/src/bgp/types.cc" "src/bgp/CMakeFiles/lg_bgp.dir/types.cc.o" "gcc" "src/bgp/CMakeFiles/lg_bgp.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/lg_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
