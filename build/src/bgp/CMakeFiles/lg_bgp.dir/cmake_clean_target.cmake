file(REMOVE_RECURSE
  "liblg_bgp.a"
)
