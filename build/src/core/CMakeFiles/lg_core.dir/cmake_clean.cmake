file(REMOVE_RECURSE
  "CMakeFiles/lg_core.dir/atlas.cc.o"
  "CMakeFiles/lg_core.dir/atlas.cc.o.d"
  "CMakeFiles/lg_core.dir/decision.cc.o"
  "CMakeFiles/lg_core.dir/decision.cc.o.d"
  "CMakeFiles/lg_core.dir/isolation.cc.o"
  "CMakeFiles/lg_core.dir/isolation.cc.o.d"
  "CMakeFiles/lg_core.dir/lifeguard.cc.o"
  "CMakeFiles/lg_core.dir/lifeguard.cc.o.d"
  "CMakeFiles/lg_core.dir/remediation.cc.o"
  "CMakeFiles/lg_core.dir/remediation.cc.o.d"
  "liblg_core.a"
  "liblg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
