# Empty dependencies file for test_properties_topology.
# This may be replaced when dependencies are built.
