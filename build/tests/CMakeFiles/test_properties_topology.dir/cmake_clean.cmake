file(REMOVE_RECURSE
  "CMakeFiles/test_properties_topology.dir/test_properties_topology.cc.o"
  "CMakeFiles/test_properties_topology.dir/test_properties_topology.cc.o.d"
  "test_properties_topology"
  "test_properties_topology.pdb"
  "test_properties_topology[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
