file(REMOVE_RECURSE
  "CMakeFiles/test_properties_dataplane.dir/test_properties_dataplane.cc.o"
  "CMakeFiles/test_properties_dataplane.dir/test_properties_dataplane.cc.o.d"
  "test_properties_dataplane"
  "test_properties_dataplane.pdb"
  "test_properties_dataplane[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
