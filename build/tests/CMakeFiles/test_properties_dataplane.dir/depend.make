# Empty dependencies file for test_properties_dataplane.
# This may be replaced when dependencies are built.
