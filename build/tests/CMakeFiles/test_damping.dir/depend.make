# Empty dependencies file for test_damping.
# This may be replaced when dependencies are built.
