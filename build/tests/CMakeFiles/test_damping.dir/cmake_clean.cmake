file(REMOVE_RECURSE
  "CMakeFiles/test_damping.dir/test_damping.cc.o"
  "CMakeFiles/test_damping.dir/test_damping.cc.o.d"
  "test_damping"
  "test_damping.pdb"
  "test_damping[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_damping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
