file(REMOVE_RECURSE
  "CMakeFiles/test_bgp_fig3.dir/test_bgp_fig3.cc.o"
  "CMakeFiles/test_bgp_fig3.dir/test_bgp_fig3.cc.o.d"
  "test_bgp_fig3"
  "test_bgp_fig3.pdb"
  "test_bgp_fig3[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bgp_fig3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
