# Empty dependencies file for test_bgp_fig3.
# This may be replaced when dependencies are built.
