file(REMOVE_RECURSE
  "CMakeFiles/test_bgp_fig2.dir/test_bgp_fig2.cc.o"
  "CMakeFiles/test_bgp_fig2.dir/test_bgp_fig2.cc.o.d"
  "test_bgp_fig2"
  "test_bgp_fig2.pdb"
  "test_bgp_fig2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bgp_fig2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
