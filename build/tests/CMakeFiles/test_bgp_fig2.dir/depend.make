# Empty dependencies file for test_bgp_fig2.
# This may be replaced when dependencies are built.
