
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bgp_fig2.cc" "tests/CMakeFiles/test_bgp_fig2.dir/test_bgp_fig2.cc.o" "gcc" "tests/CMakeFiles/test_bgp_fig2.dir/test_bgp_fig2.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/lg_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/lg_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/lg_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/lg_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/lg_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
