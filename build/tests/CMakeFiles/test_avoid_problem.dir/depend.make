# Empty dependencies file for test_avoid_problem.
# This may be replaced when dependencies are built.
