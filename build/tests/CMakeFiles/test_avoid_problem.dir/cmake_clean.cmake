file(REMOVE_RECURSE
  "CMakeFiles/test_avoid_problem.dir/test_avoid_problem.cc.o"
  "CMakeFiles/test_avoid_problem.dir/test_avoid_problem.cc.o.d"
  "test_avoid_problem"
  "test_avoid_problem.pdb"
  "test_avoid_problem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_avoid_problem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
