file(REMOVE_RECURSE
  "CMakeFiles/test_lifeguard.dir/test_lifeguard.cc.o"
  "CMakeFiles/test_lifeguard.dir/test_lifeguard.cc.o.d"
  "test_lifeguard"
  "test_lifeguard.pdb"
  "test_lifeguard[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lifeguard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
