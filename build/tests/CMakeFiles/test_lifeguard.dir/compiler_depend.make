# Empty compiler generated dependencies file for test_lifeguard.
# This may be replaced when dependencies are built.
