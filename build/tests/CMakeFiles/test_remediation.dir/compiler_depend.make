# Empty compiler generated dependencies file for test_remediation.
# This may be replaced when dependencies are built.
