# Empty compiler generated dependencies file for test_dns_failover.
# This may be replaced when dependencies are built.
