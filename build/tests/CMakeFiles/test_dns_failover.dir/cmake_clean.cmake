file(REMOVE_RECURSE
  "CMakeFiles/test_dns_failover.dir/test_dns_failover.cc.o"
  "CMakeFiles/test_dns_failover.dir/test_dns_failover.cc.o.d"
  "test_dns_failover"
  "test_dns_failover.pdb"
  "test_dns_failover[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dns_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
