file(REMOVE_RECURSE
  "CMakeFiles/test_poison_experiment.dir/test_poison_experiment.cc.o"
  "CMakeFiles/test_poison_experiment.dir/test_poison_experiment.cc.o.d"
  "test_poison_experiment"
  "test_poison_experiment.pdb"
  "test_poison_experiment[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_poison_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
