# Empty dependencies file for test_poison_experiment.
# This may be replaced when dependencies are built.
