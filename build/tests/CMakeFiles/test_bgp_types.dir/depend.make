# Empty dependencies file for test_bgp_types.
# This may be replaced when dependencies are built.
