file(REMOVE_RECURSE
  "CMakeFiles/test_bgp_types.dir/test_bgp_types.cc.o"
  "CMakeFiles/test_bgp_types.dir/test_bgp_types.cc.o.d"
  "test_bgp_types"
  "test_bgp_types.pdb"
  "test_bgp_types[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bgp_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
