# Empty dependencies file for test_properties_bgp.
# This may be replaced when dependencies are built.
