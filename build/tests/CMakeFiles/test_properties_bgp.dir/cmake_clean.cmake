file(REMOVE_RECURSE
  "CMakeFiles/test_properties_bgp.dir/test_properties_bgp.cc.o"
  "CMakeFiles/test_properties_bgp.dir/test_properties_bgp.cc.o.d"
  "test_properties_bgp"
  "test_properties_bgp.pdb"
  "test_properties_bgp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
