file(REMOVE_RECURSE
  "CMakeFiles/test_lifeguard_edges.dir/test_lifeguard_edges.cc.o"
  "CMakeFiles/test_lifeguard_edges.dir/test_lifeguard_edges.cc.o.d"
  "test_lifeguard_edges"
  "test_lifeguard_edges.pdb"
  "test_lifeguard_edges[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lifeguard_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
