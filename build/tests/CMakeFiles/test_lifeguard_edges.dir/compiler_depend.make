# Empty compiler generated dependencies file for test_lifeguard_edges.
# This may be replaced when dependencies are built.
