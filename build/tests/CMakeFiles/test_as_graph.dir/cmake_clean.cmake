file(REMOVE_RECURSE
  "CMakeFiles/test_as_graph.dir/test_as_graph.cc.o"
  "CMakeFiles/test_as_graph.dir/test_as_graph.cc.o.d"
  "test_as_graph"
  "test_as_graph.pdb"
  "test_as_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_as_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
