# Empty compiler generated dependencies file for test_as_graph.
# This may be replaced when dependencies are built.
