file(REMOVE_RECURSE
  "CMakeFiles/sec2_3_communities.dir/sec2_3_communities.cc.o"
  "CMakeFiles/sec2_3_communities.dir/sec2_3_communities.cc.o.d"
  "sec2_3_communities"
  "sec2_3_communities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec2_3_communities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
