# Empty compiler generated dependencies file for sec2_3_communities.
# This may be replaced when dependencies are built.
