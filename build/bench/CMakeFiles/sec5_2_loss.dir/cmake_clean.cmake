file(REMOVE_RECURSE
  "CMakeFiles/sec5_2_loss.dir/sec5_2_loss.cc.o"
  "CMakeFiles/sec5_2_loss.dir/sec5_2_loss.cc.o.d"
  "sec5_2_loss"
  "sec5_2_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5_2_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
