# Empty compiler generated dependencies file for sec5_2_loss.
# This may be replaced when dependencies are built.
