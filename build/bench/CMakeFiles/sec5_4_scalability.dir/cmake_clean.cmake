file(REMOVE_RECURSE
  "CMakeFiles/sec5_4_scalability.dir/sec5_4_scalability.cc.o"
  "CMakeFiles/sec5_4_scalability.dir/sec5_4_scalability.cc.o.d"
  "sec5_4_scalability"
  "sec5_4_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5_4_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
