# Empty dependencies file for sec5_4_scalability.
# This may be replaced when dependencies are built.
