file(REMOVE_RECURSE
  "CMakeFiles/fig1_outage_durations.dir/fig1_outage_durations.cc.o"
  "CMakeFiles/fig1_outage_durations.dir/fig1_outage_durations.cc.o.d"
  "fig1_outage_durations"
  "fig1_outage_durations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_outage_durations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
