# Empty dependencies file for fig1_outage_durations.
# This may be replaced when dependencies are built.
