# Empty dependencies file for sec7_1_anomalies.
# This may be replaced when dependencies are built.
