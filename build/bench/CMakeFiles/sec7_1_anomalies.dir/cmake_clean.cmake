file(REMOVE_RECURSE
  "CMakeFiles/sec7_1_anomalies.dir/sec7_1_anomalies.cc.o"
  "CMakeFiles/sec7_1_anomalies.dir/sec7_1_anomalies.cc.o.d"
  "sec7_1_anomalies"
  "sec7_1_anomalies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec7_1_anomalies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
