file(REMOVE_RECURSE
  "CMakeFiles/table2_update_load.dir/table2_update_load.cc.o"
  "CMakeFiles/table2_update_load.dir/table2_update_load.cc.o.d"
  "table2_update_load"
  "table2_update_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_update_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
