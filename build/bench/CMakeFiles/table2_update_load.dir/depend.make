# Empty dependencies file for table2_update_load.
# This may be replaced when dependencies are built.
