file(REMOVE_RECURSE
  "CMakeFiles/fig5_residual_duration.dir/fig5_residual_duration.cc.o"
  "CMakeFiles/fig5_residual_duration.dir/fig5_residual_duration.cc.o.d"
  "fig5_residual_duration"
  "fig5_residual_duration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_residual_duration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
