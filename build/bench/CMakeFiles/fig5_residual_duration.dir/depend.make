# Empty dependencies file for fig5_residual_duration.
# This may be replaced when dependencies are built.
