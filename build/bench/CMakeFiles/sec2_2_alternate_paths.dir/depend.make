# Empty dependencies file for sec2_2_alternate_paths.
# This may be replaced when dependencies are built.
