file(REMOVE_RECURSE
  "CMakeFiles/sec2_2_alternate_paths.dir/sec2_2_alternate_paths.cc.o"
  "CMakeFiles/sec2_2_alternate_paths.dir/sec2_2_alternate_paths.cc.o.d"
  "sec2_2_alternate_paths"
  "sec2_2_alternate_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec2_2_alternate_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
