file(REMOVE_RECURSE
  "CMakeFiles/sec5_3_accuracy.dir/sec5_3_accuracy.cc.o"
  "CMakeFiles/sec5_3_accuracy.dir/sec5_3_accuracy.cc.o.d"
  "sec5_3_accuracy"
  "sec5_3_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5_3_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
