# Empty dependencies file for sec5_3_accuracy.
# This may be replaced when dependencies are built.
