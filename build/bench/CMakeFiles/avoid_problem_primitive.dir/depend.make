# Empty dependencies file for avoid_problem_primitive.
# This may be replaced when dependencies are built.
