file(REMOVE_RECURSE
  "CMakeFiles/avoid_problem_primitive.dir/avoid_problem_primitive.cc.o"
  "CMakeFiles/avoid_problem_primitive.dir/avoid_problem_primitive.cc.o.d"
  "avoid_problem_primitive"
  "avoid_problem_primitive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avoid_problem_primitive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
