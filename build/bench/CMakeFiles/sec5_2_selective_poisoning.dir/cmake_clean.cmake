file(REMOVE_RECURSE
  "CMakeFiles/sec5_2_selective_poisoning.dir/sec5_2_selective_poisoning.cc.o"
  "CMakeFiles/sec5_2_selective_poisoning.dir/sec5_2_selective_poisoning.cc.o.d"
  "sec5_2_selective_poisoning"
  "sec5_2_selective_poisoning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5_2_selective_poisoning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
