# Empty compiler generated dependencies file for sec5_2_selective_poisoning.
# This may be replaced when dependencies are built.
