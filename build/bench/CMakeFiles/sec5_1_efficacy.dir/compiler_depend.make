# Empty compiler generated dependencies file for sec5_1_efficacy.
# This may be replaced when dependencies are built.
