file(REMOVE_RECURSE
  "CMakeFiles/sec5_1_efficacy.dir/sec5_1_efficacy.cc.o"
  "CMakeFiles/sec5_1_efficacy.dir/sec5_1_efficacy.cc.o.d"
  "sec5_1_efficacy"
  "sec5_1_efficacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5_1_efficacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
