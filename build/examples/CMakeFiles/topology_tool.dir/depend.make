# Empty dependencies file for topology_tool.
# This may be replaced when dependencies are built.
