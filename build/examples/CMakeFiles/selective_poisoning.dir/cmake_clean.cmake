file(REMOVE_RECURSE
  "CMakeFiles/selective_poisoning.dir/selective_poisoning.cpp.o"
  "CMakeFiles/selective_poisoning.dir/selective_poisoning.cpp.o.d"
  "selective_poisoning"
  "selective_poisoning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selective_poisoning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
