# Empty dependencies file for selective_poisoning.
# This may be replaced when dependencies are built.
